//! Deterministic pseudo-random numbers for simulation components.
//!
//! A SplitMix64 generator: tiny state, excellent statistical quality for
//! simulation purposes, and — crucially — fully deterministic from its seed
//! so simulation runs are reproducible. (Workload *generation* in
//! `cni-apps` uses the `rand` crate; this generator is for in-simulation
//! decisions such as approximate-LRU sampling.)

/// A seedable SplitMix64 pseudo-random number generator.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator from a seed. Equal seeds yield equal streams.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`. `bound` must be nonzero.
    ///
    /// Uses the widening-multiply technique with rejection to avoid modulo
    /// bias.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be nonzero");
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            let lo = m as u64;
            if lo >= bound || lo >= (u64::MAX - bound + 1) % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Current internal state, for checkpointing. Feeding this to
    /// [`SplitMix64::from_state`] resumes the stream exactly where it left
    /// off.
    pub fn state(&self) -> u64 {
        self.state
    }

    /// Rebuild a generator from a state captured with [`SplitMix64::state`].
    pub fn from_state(state: u64) -> Self {
        SplitMix64 { state }
    }

    /// Fisher–Yates shuffle of a slice, deterministic given the generator
    /// state.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn next_below_in_range() {
        let mut r = SplitMix64::new(7);
        for _ in 0..10_000 {
            let v = r.next_below(13);
            assert!(v < 13);
        }
    }

    #[test]
    fn next_below_covers_all_residues() {
        let mut r = SplitMix64::new(9);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[r.next_below(8) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut r = SplitMix64::new(3);
        for _ in 0..10_000 {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SplitMix64::new(5);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        // And, with overwhelming probability, actually permuted.
        assert_ne!(v, (0..50).collect::<Vec<_>>());
    }
}
