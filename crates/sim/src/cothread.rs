//! Coroutine threads: execution-driven simulated processors.
//!
//! Proteus-style execution-driven simulation runs the *real* application
//! code and intercepts only the operations that have simulated cost or
//! semantics (shared-memory faults, locks, barriers, message sends). Rust
//! has no stackful coroutines in the standard library, so each simulated
//! CPU is an OS thread that rendezvouses with the simulation engine:
//!
//! * the engine calls [`CoThread::start`]/[`CoThread::resume`], which
//!   unblocks the program thread and then blocks the engine until the
//!   program either issues its next request via [`Port::call`] or finishes;
//! * the program thread blocks in [`Port::call`] until the engine answers.
//!
//! At any instant at most one of {engine, one program thread} is running,
//! so the simulation stays deterministic even though application data lives
//! in shared memory. The handshake costs roughly a microsecond per
//! switch — cheap because programs only yield on *simulated communication*,
//! never on ordinary computation.
//!
//! Dropping a [`CoThread`] before the program finishes cancels it: the next
//! `Port::call` unwinds the program thread with a private panic payload that
//! the wrapper swallows, so aborted simulations don't leak threads.

use cni_trace::{TraceEvent, TraceSink};
use crossbeam::channel::{bounded, Receiver, Sender};
use std::panic::{self, AssertUnwindSafe};
use std::thread::JoinHandle;

/// What a resumed co-thread handed back to the engine.
#[derive(Debug, PartialEq, Eq)]
pub enum Yield<Req> {
    /// The program issued a request and is now blocked awaiting the
    /// response.
    Request(Req),
    /// The program ran to completion.
    Finished,
}

enum Wire<Req> {
    Request(Req),
    Finished,
    Panicked(String),
}

/// Private panic payload used to unwind a cancelled program thread.
struct Cancelled;

/// The program-side endpoint: issue simulated-service requests with
/// [`Port::call`].
pub struct Port<Req, Resp> {
    req_tx: Sender<Wire<Req>>,
    resp_rx: Receiver<Resp>,
}

impl<Req, Resp> Port<Req, Resp> {
    /// Hand `req` to the engine and block until it responds.
    ///
    /// If the engine has dropped the [`CoThread`] (simulation aborted), this
    /// unwinds the program thread; the unwind is caught by the co-thread
    /// wrapper and the thread exits quietly.
    pub fn call(&mut self, req: Req) -> Resp {
        if self.req_tx.send(Wire::Request(req)).is_err() {
            panic::panic_any(Cancelled);
        }
        match self.resp_rx.recv() {
            Ok(resp) => resp,
            Err(_) => panic::panic_any(Cancelled),
        }
    }
}

/// Engine-side handle to a suspended program.
pub struct CoThread<Req, Resp> {
    req_rx: Option<Receiver<Wire<Req>>>,
    resp_tx: Option<Sender<Resp>>,
    start_tx: Option<Sender<()>>,
    handle: Option<JoinHandle<()>>,
    name: String,
    started: bool,
    finished: bool,
    trace: TraceSink,
    cpu: u32,
}

impl<Req: Send + 'static, Resp: Send + 'static> CoThread<Req, Resp> {
    /// Create a co-thread for `program`. The program does not begin running
    /// until [`CoThread::start`] is called.
    pub fn spawn<F>(name: &str, program: F) -> Self
    where
        F: FnOnce(&mut Port<Req, Resp>) + Send + 'static,
    {
        let (req_tx, req_rx) = bounded::<Wire<Req>>(1);
        let (resp_tx, resp_rx) = bounded::<Resp>(1);
        let (start_tx, start_rx) = bounded::<()>(1);
        let thread_name = name.to_string();
        let handle = std::thread::Builder::new()
            .name(thread_name.clone())
            .spawn(move || {
                // Hold until the engine explicitly starts us, so no program
                // code runs concurrently with the engine.
                if start_rx.recv().is_err() {
                    return; // cancelled before start
                }
                let mut port = Port {
                    req_tx: req_tx.clone(),
                    resp_rx,
                };
                let outcome = panic::catch_unwind(AssertUnwindSafe(|| program(&mut port)));
                match outcome {
                    Ok(()) => {
                        let _ = req_tx.send(Wire::Finished);
                    }
                    Err(payload) => {
                        if payload.downcast_ref::<Cancelled>().is_some() {
                            // Engine went away; exit quietly.
                            return;
                        }
                        let msg = payload
                            .downcast_ref::<&str>()
                            .map(|s| s.to_string())
                            .or_else(|| payload.downcast_ref::<String>().cloned())
                            .unwrap_or_else(|| "non-string panic payload".to_string());
                        let _ = req_tx.send(Wire::Panicked(msg));
                    }
                }
            })
            .expect("failed to spawn co-thread");
        CoThread {
            req_rx: Some(req_rx),
            resp_tx: Some(resp_tx),
            start_tx: Some(start_tx),
            handle: Some(handle),
            name: thread_name,
            started: false,
            finished: false,
            trace: TraceSink::Disabled,
            cpu: 0,
        }
    }

    /// Attach a trace sink: every engine↔program control transfer records a
    /// `CothreadSwitch` event tagged with `cpu` (the simulated processor
    /// id, also used as the trace's node id).
    pub fn set_trace(&mut self, trace: TraceSink, cpu: u32) {
        self.trace = trace;
        self.cpu = cpu;
    }

    /// Begin executing the program; blocks until its first yield.
    ///
    /// # Panics
    /// Panics if called twice, or if the program panics before yielding.
    pub fn start(&mut self) -> Yield<Req> {
        assert!(!self.started, "co-thread {:?} already started", self.name);
        self.started = true;
        self.start_tx
            .take()
            .expect("start channel present before start")
            .send(())
            .expect("co-thread died before start");
        self.wait()
    }

    /// Deliver `resp` to the program's pending [`Port::call`] and block
    /// until its next yield.
    ///
    /// # Panics
    /// Panics if the program has not started, has already finished, or
    /// panics while running.
    pub fn resume(&mut self, resp: Resp) -> Yield<Req> {
        assert!(self.started, "co-thread {:?} not started", self.name);
        assert!(!self.finished, "co-thread {:?} already finished", self.name);
        self.resp_tx
            .as_ref()
            .expect("resp channel present while running")
            .send(resp)
            .unwrap_or_else(|_| panic!("co-thread {:?} died awaiting response", self.name));
        self.wait()
    }

    fn wait(&mut self) -> Yield<Req> {
        self.trace.emit(
            self.cpu,
            TraceEvent::CothreadSwitch {
                cpu: self.cpu,
                enter: true,
            },
        );
        let y = self.wait_inner();
        self.trace.emit(
            self.cpu,
            TraceEvent::CothreadSwitch {
                cpu: self.cpu,
                enter: false,
            },
        );
        y
    }

    fn wait_inner(&mut self) -> Yield<Req> {
        let wire = self
            .req_rx
            .as_ref()
            .expect("req channel present while running")
            .recv();
        match wire {
            Ok(Wire::Request(req)) => Yield::Request(req),
            Ok(Wire::Finished) => {
                self.finished = true;
                Yield::Finished
            }
            Ok(Wire::Panicked(msg)) => {
                self.finished = true;
                panic!("co-thread {:?} panicked: {msg}", self.name)
            }
            Err(_) => {
                self.finished = true;
                panic!("co-thread {:?} disconnected unexpectedly", self.name)
            }
        }
    }

    /// True once the program has run to completion.
    pub fn is_finished(&self) -> bool {
        self.finished
    }

    /// The name given at spawn time (also the OS thread name).
    pub fn name(&self) -> &str {
        &self.name
    }
}

impl<Req, Resp> Drop for CoThread<Req, Resp> {
    fn drop(&mut self) {
        // Dropping the channel endpoints cancels any pending Port::call and
        // prevents a not-yet-started program from ever running.
        self.start_tx = None;
        self.resp_tx = None;
        self.req_rx = None;
        if let Some(handle) = self.handle.take() {
            // The program thread can only be blocked on one of the channels
            // we just dropped, so this join terminates promptly.
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_response_roundtrip() {
        let mut co: CoThread<u32, u32> = CoThread::spawn("adder", |port| {
            let mut acc = 0;
            for i in 0..5u32 {
                acc = port.call(acc + i);
            }
            assert_eq!(acc, 1 + 2 + 3 + 4);
        });
        let mut y = co.start();
        let mut sum = 0;
        while let Yield::Request(v) = y {
            sum = v;
            y = co.resume(v);
        }
        assert_eq!(sum, 10);
        assert!(co.is_finished());
    }

    #[test]
    fn finishes_without_requests() {
        let mut co: CoThread<(), ()> = CoThread::spawn("noop", |_port| {});
        assert_eq!(co.start(), Yield::Finished);
    }

    #[test]
    fn program_does_not_run_before_start() {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;
        let flag = Arc::new(AtomicBool::new(false));
        let f2 = flag.clone();
        let mut co: CoThread<(), ()> = CoThread::spawn("lazy", move |_port| {
            f2.store(true, Ordering::SeqCst);
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert!(!flag.load(Ordering::SeqCst), "ran before start()");
        assert_eq!(co.start(), Yield::Finished);
        assert!(flag.load(Ordering::SeqCst));
    }

    #[test]
    fn drop_cancels_unstarted() {
        let co: CoThread<u32, u32> = CoThread::spawn("never", |port| {
            port.call(1);
            unreachable!("must not run");
        });
        drop(co); // must not hang or panic
    }

    #[test]
    fn drop_cancels_mid_flight() {
        let mut co: CoThread<u32, u32> = CoThread::spawn("cancelled", |port| {
            let _ = port.call(1);
            let _ = port.call(2);
            unreachable!("second call must cancel");
        });
        match co.start() {
            Yield::Request(1) => {}
            other => panic!("unexpected yield {:?}", other),
        }
        let y = co.resume(0);
        assert_eq!(y, Yield::Request(2));
        drop(co); // program blocked in call(2); drop must unwind it cleanly
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn program_panic_propagates() {
        let mut co: CoThread<u32, u32> = CoThread::spawn("bomb", |_port| {
            panic!("boom");
        });
        let _ = co.start();
    }

    #[test]
    #[should_panic(expected = "already finished")]
    fn resume_after_finish_panics() {
        let mut co: CoThread<u32, u32> = CoThread::spawn("done", |_port| {});
        assert_eq!(co.start(), Yield::Finished);
        let _ = co.resume(0);
    }

    #[test]
    fn many_cothreads_interleave_deterministically() {
        // Round-robin 8 co-threads, each yielding its own sequence; the
        // collected trace must be identical across repeated runs.
        fn run_once() -> Vec<(usize, u32)> {
            let mut cos: Vec<CoThread<u32, u32>> = (0..8)
                .map(|id| {
                    CoThread::spawn(&format!("w{id}"), move |port| {
                        for k in 0..10u32 {
                            port.call(id as u32 * 100 + k);
                        }
                    })
                })
                .collect();
            let mut trace = Vec::new();
            let mut pending: Vec<Option<Yield<u32>>> =
                cos.iter_mut().map(|c| Some(c.start())).collect();
            loop {
                let mut progressed = false;
                for (i, co) in cos.iter_mut().enumerate() {
                    if let Some(Yield::Request(v)) = pending[i].take() {
                        trace.push((i, v));
                        pending[i] = Some(co.resume(v));
                        progressed = true;
                    }
                }
                if !progressed {
                    break;
                }
            }
            trace
        }
        assert_eq!(run_once(), run_once());
    }
}
