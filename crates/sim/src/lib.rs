//! `cni-sim` — deterministic discrete-event simulation kernel used by the
//! CNI reproduction.
//!
//! The crate provides the domain-independent pieces of a Proteus-style
//! execution-driven simulator:
//!
//! * [`time`] — picosecond-resolution virtual time ([`SimTime`]) and clock
//!   domains ([`Clock`]) so components running at different frequencies
//!   (166 MHz CPU, 25 MHz memory bus, 33 MHz NIC processor) can convert
//!   cycle counts to time exactly and deterministically.
//! * [`queue`] — a deterministic event queue: events at equal timestamps
//!   fire in insertion order, so a simulation run is a pure function of its
//!   inputs.
//! * [`pdes`] — a conservative lookahead-based parallel executor over the
//!   event queue: per-shard lanes advance concurrently inside a safe
//!   window and a serial replay barrier reconstructs the exact serial
//!   `(time, seq)` order, so results stay byte-identical at any worker
//!   count (DESIGN.md §4.11).
//! * [`cothread`] — coroutine processors. Each simulated CPU runs *real*
//!   application code on an OS thread; exactly one thread runs at a time and
//!   control transfers to the engine whenever the program needs a simulated
//!   service (page fault, lock, barrier, message). This is what makes the
//!   simulation *execution-driven* rather than trace-driven.
//! * [`stats`] — counters, accumulators and log-2 histograms used for the
//!   paper's overhead breakdowns (Tables 2–4).
//! * [`rng`] — a small, seedable SplitMix64 generator for components that
//!   need deterministic pseudo-randomness inside the simulation.

#![deny(missing_docs)]

pub mod cothread;
pub mod pdes;
pub mod queue;
pub mod rng;
pub mod stats;
pub mod time;

pub use cothread::{CoThread, Port, Yield};
pub use pdes::{Driver, Executor, Outbox};
pub use queue::EventQueue;
pub use rng::SplitMix64;
pub use stats::{Accum, Counter, Histogram};
pub use time::{Clock, SimTime};
