//! Virtual time and clock domains.
//!
//! All simulated time is kept in integer **picoseconds** so that clock
//! domains with non-commensurable periods (166 MHz, 33 MHz, 25 MHz, …)
//! compose without floating-point drift. A full application run in the
//! paper is ≤ 9·10¹⁰ CPU cycles ≈ 5.4·10¹⁴ ps, comfortably inside `u64`.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// A point in (or span of) virtual time, in picoseconds.
///
/// `SimTime` is used both as an absolute timestamp and as a duration; the
/// arithmetic is the same and the simulation never needs a signed span.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Time zero, the start of every simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable time; used as an "infinitely far" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from picoseconds.
    #[inline]
    pub const fn from_ps(ps: u64) -> Self {
        SimTime(ps)
    }

    /// Construct from nanoseconds.
    #[inline]
    pub const fn from_ns(ns: u64) -> Self {
        SimTime(ns * 1_000)
    }

    /// Construct from microseconds.
    #[inline]
    pub const fn from_us(us: u64) -> Self {
        SimTime(us * 1_000_000)
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn from_ms(ms: u64) -> Self {
        SimTime(ms * 1_000_000_000)
    }

    /// Picoseconds since time zero.
    #[inline]
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// Whole nanoseconds (truncating).
    #[inline]
    pub const fn as_ns(self) -> u64 {
        self.0 / 1_000
    }

    /// Fractional microseconds.
    #[inline]
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Fractional milliseconds.
    #[inline]
    pub fn as_ms_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e12
    }

    /// Saturating subtraction: spans never go negative.
    #[inline]
    pub fn saturating_sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }

    /// The later of two times.
    #[inline]
    pub fn max(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.max(rhs.0))
    }

    /// The earlier of two times.
    #[inline]
    pub fn min(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.min(rhs.0))
    }
}

impl Add for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.checked_add(rhs.0).expect("SimTime overflow"))
    }
}

impl AddAssign for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimTime) {
        *self = *self + rhs;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.checked_sub(rhs.0).expect("SimTime underflow"))
    }
}

impl SubAssign for SimTime {
    #[inline]
    fn sub_assign(&mut self, rhs: SimTime) {
        *self = *self - rhs;
    }
}

impl Sum for SimTime {
    fn sum<I: Iterator<Item = SimTime>>(iter: I) -> SimTime {
        iter.fold(SimTime::ZERO, Add::add)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}ps", self.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ps = self.0;
        if ps >= 1_000_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if ps >= 1_000_000_000 {
            write!(f, "{:.3}ms", self.as_ms_f64())
        } else if ps >= 1_000_000 {
            write!(f, "{:.3}us", self.as_us_f64())
        } else if ps >= 1_000 {
            write!(f, "{}ns", ps / 1_000)
        } else {
            write!(f, "{}ps", ps)
        }
    }
}

/// A clock domain: converts cycle counts of a fixed-frequency component into
/// virtual time.
///
/// The period is stored in picoseconds, rounded to the nearest integer, which
/// keeps all arithmetic exact thereafter. At 166 MHz the rounding error is
/// ~2·10⁻⁵ and identical for both simulated configurations, so relative
/// results are unaffected.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Clock {
    period_ps: u64,
}

impl Clock {
    /// A clock running at `mhz` megahertz.
    pub fn from_mhz(mhz: u64) -> Self {
        assert!(mhz > 0, "clock frequency must be positive");
        // period = 1e12 ps / (mhz * 1e6 Hz), rounded to nearest.
        let hz = mhz * 1_000_000;
        Clock {
            period_ps: (1_000_000_000_000 + hz / 2) / hz,
        }
    }

    /// A clock with an explicit period in picoseconds.
    pub fn from_period_ps(period_ps: u64) -> Self {
        assert!(period_ps > 0, "clock period must be positive");
        Clock { period_ps }
    }

    /// The clock period in picoseconds.
    #[inline]
    pub fn period_ps(self) -> u64 {
        self.period_ps
    }

    /// The duration of `cycles` clock cycles.
    #[inline]
    pub fn cycles(self, cycles: u64) -> SimTime {
        SimTime(
            cycles
                .checked_mul(self.period_ps)
                // cni-lint: allow(panic-path) -- u64 picoseconds overflow at ~5000 sim-hours; a wrap would silently corrupt every later timestamp, so die loudly
                .expect("cycle count overflow"),
        )
    }

    /// How many *whole* cycles fit in `t` (truncating).
    #[inline]
    pub fn cycles_in(self, t: SimTime) -> u64 {
        t.0 / self.period_ps
    }

    /// How many cycles are needed to cover `t` (rounding up).
    #[inline]
    pub fn cycles_ceil(self, t: SimTime) -> u64 {
        t.0.div_ceil(self.period_ps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simtime_constructors_agree() {
        assert_eq!(SimTime::from_ns(1), SimTime::from_ps(1_000));
        assert_eq!(SimTime::from_us(1), SimTime::from_ns(1_000));
        assert_eq!(SimTime::from_ms(1), SimTime::from_us(1_000));
    }

    #[test]
    fn simtime_arithmetic() {
        let a = SimTime::from_ns(10);
        let b = SimTime::from_ns(3);
        assert_eq!(a + b, SimTime::from_ns(13));
        assert_eq!(a - b, SimTime::from_ns(7));
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
        assert_eq!(a.max(b), a);
        assert_eq!(a.min(b), b);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn simtime_sub_underflow_panics() {
        let _ = SimTime::from_ns(1) - SimTime::from_ns(2);
    }

    #[test]
    fn simtime_sum() {
        let total: SimTime = (1..=4).map(SimTime::from_ns).sum();
        assert_eq!(total, SimTime::from_ns(10));
    }

    #[test]
    fn clock_periods_round_to_nearest() {
        // 166 MHz -> 6024.096... ps, rounds to 6024.
        assert_eq!(Clock::from_mhz(166).period_ps(), 6024);
        // 25 MHz -> exactly 40_000 ps.
        assert_eq!(Clock::from_mhz(25).period_ps(), 40_000);
        // 33 MHz -> 30303.03 ps -> 30303.
        assert_eq!(Clock::from_mhz(33).period_ps(), 30_303);
    }

    #[test]
    fn clock_cycle_conversions() {
        let c = Clock::from_mhz(25);
        assert_eq!(c.cycles(2), SimTime::from_ps(80_000));
        assert_eq!(c.cycles_in(SimTime::from_ps(80_000)), 2);
        assert_eq!(c.cycles_in(SimTime::from_ps(79_999)), 1);
        assert_eq!(c.cycles_ceil(SimTime::from_ps(79_999)), 2);
        assert_eq!(c.cycles_ceil(SimTime::from_ps(80_000)), 2);
    }

    #[test]
    fn display_picks_sane_units() {
        assert_eq!(format!("{}", SimTime::from_ps(5)), "5ps");
        assert_eq!(format!("{}", SimTime::from_ns(5)), "5ns");
        assert_eq!(format!("{}", SimTime::from_us(5)), "5.000us");
        assert_eq!(format!("{}", SimTime::from_ms(5)), "5.000ms");
    }
}
