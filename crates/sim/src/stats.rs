//! Counters, accumulators and histograms for simulation statistics.
//!
//! These are the raw material of the paper's evaluation: the overhead
//! breakdowns of Tables 2–4, the network-cache hit ratios of Figures 2–13,
//! and the latency curves of Figure 14 are all folds over these types.

use serde::{Deserialize, Serialize};

/// A monotonically increasing event counter.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Counter(pub u64);

impl Counter {
    /// Increment by one.
    #[inline]
    pub fn inc(&mut self) {
        self.0 += 1;
    }

    /// Increment by `n`.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current count.
    #[inline]
    pub fn get(self) -> u64 {
        self.0
    }

    /// This counter as a fraction of `total` (0 when `total` is 0).
    pub fn ratio_of(self, total: Counter) -> f64 {
        if total.0 == 0 {
            0.0
        } else {
            self.0 as f64 / total.0 as f64
        }
    }
}

/// Running sum / min / max / count of an `f64`-valued observation.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct Accum {
    /// Number of observations recorded.
    pub count: u64,
    /// Sum of all observations.
    pub sum: f64,
    /// Smallest observation (`+inf` when empty).
    pub min: f64,
    /// Largest observation (`-inf` when empty).
    pub max: f64,
}

impl Default for Accum {
    fn default() -> Self {
        Accum {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }
}

impl Accum {
    /// Record one observation.
    pub fn record(&mut self, v: f64) {
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Arithmetic mean of recorded observations; 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Merge another accumulator into this one.
    pub fn merge(&mut self, other: &Accum) {
        self.count += other.count;
        self.sum += other.sum;
        if other.count > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
    }
}

/// A power-of-two bucketed histogram of `u64` observations.
///
/// Bucket `i` covers `[2^(i-1), 2^i)` for `i ≥ 1`; bucket 0 holds zeros and
/// ones. Good enough to characterise message-size and latency distributions
/// without per-sample storage.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Record one observation.
    pub fn record(&mut self, v: u64) {
        let idx = if v <= 1 {
            0
        } else {
            64 - (v - 1).leading_zeros() as usize
        };
        if self.buckets.len() <= idx {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum += v;
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of observations; 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper bound (exclusive) of the bucket containing the p-th percentile,
    /// `p` in `[0, 100]`.
    ///
    /// **Empty-histogram contract:** with no recorded observations this
    /// returns 0 for every `p` (never NaN, never a panic). Aggregation
    /// code — in particular `cni-batch`'s merging of per-kind latency
    /// histograms, where a message kind may appear in no run of a batch —
    /// relies on this: an absent distribution reads as "0 of whatever
    /// unit", matching [`Histogram::mean`].
    pub fn percentile_bound(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (p / 100.0 * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return 1u64 << i;
            }
        }
        1u64 << (self.buckets.len().saturating_sub(1))
    }

    /// Estimate of the p-th percentile (`p` in `[0, 100]`) by linear
    /// interpolation within the containing power-of-two bucket. Exact
    /// whenever a bucket holds a single distinct value (buckets 0–1);
    /// elsewhere the error is bounded by the bucket width.
    ///
    /// **Empty-histogram contract:** with no recorded observations this
    /// returns 0.0 for every `p` — including `p = 0` and `p = 100` —
    /// never NaN and never a panic. See [`Histogram::percentile_bound`]
    /// for why downstream merging code depends on this.
    pub fn percentile(&self, p: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = (p.clamp(0.0, 100.0) / 100.0 * self.count as f64)
            .ceil()
            .max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if seen + n >= target {
                // Bucket 0 holds {0, 1}; bucket i ≥ 1 holds (2^(i-1), 2^i].
                let (lo, hi) = if i == 0 {
                    (0.0, 1.0)
                } else {
                    ((1u64 << (i - 1)) as f64, (1u64 << i) as f64)
                };
                let frac = (target - seen) as f64 / n as f64;
                return lo + frac * (hi - lo);
            }
            seen += n;
        }
        (1u64 << (self.buckets.len() - 1)) as f64
    }

    /// Merge another histogram into this one (bucket-wise sum).
    pub fn merge(&mut self, other: &Histogram) {
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (b, &o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += o;
        }
        self.count += other.count;
        self.sum += other.sum;
    }

    /// Bucket populations, lowest bucket first.
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basics() {
        let mut c = Counter::default();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        assert_eq!(c.ratio_of(Counter(10)), 0.5);
        assert_eq!(c.ratio_of(Counter(0)), 0.0);
    }

    #[test]
    fn accum_tracks_min_max_mean() {
        let mut a = Accum::default();
        assert!(a.is_empty());
        for v in [3.0, 1.0, 2.0] {
            a.record(v);
        }
        assert_eq!(a.count, 3);
        assert_eq!(a.min, 1.0);
        assert_eq!(a.max, 3.0);
        assert!((a.mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn accum_merge() {
        let mut a = Accum::default();
        a.record(1.0);
        let mut b = Accum::default();
        b.record(5.0);
        a.merge(&b);
        assert_eq!(a.count, 2);
        assert_eq!(a.max, 5.0);
        assert_eq!(a.min, 1.0);
        // Merging an empty accumulator must not poison min/max.
        a.merge(&Accum::default());
        assert_eq!(a.count, 2);
        assert_eq!(a.min, 1.0);
    }

    #[test]
    fn histogram_bucket_boundaries() {
        let mut h = Histogram::new();
        h.record(0);
        h.record(1);
        h.record(2);
        h.record(3);
        h.record(4);
        h.record(5);
        // zeros+ones in bucket 0; 2 in bucket 1; 3..4 in bucket 2; 5..8 in 3.
        assert_eq!(h.buckets(), &[2, 1, 2, 1]);
        assert_eq!(h.count(), 6);
        assert!((h.mean() - 15.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_percentile() {
        let mut h = Histogram::new();
        for _ in 0..99 {
            h.record(1);
        }
        h.record(1024);
        assert_eq!(h.percentile_bound(50.0), 1);
        assert_eq!(h.percentile_bound(100.0), 1024);
        assert_eq!(Histogram::new().percentile_bound(50.0), 0);
    }

    #[test]
    fn histogram_percentile_interpolates() {
        let mut h = Histogram::new();
        for _ in 0..99 {
            h.record(1);
        }
        h.record(1024);
        // The 50th percentile sits inside the {0,1} bucket: exact.
        assert!(h.percentile(50.0) <= 1.0);
        // The 100th falls in the (512, 1024] bucket.
        let p100 = h.percentile(100.0);
        assert!((512.0..=1024.0).contains(&p100), "{p100}");
        assert_eq!(Histogram::new().percentile(99.0), 0.0);
        // Monotone in p.
        assert!(h.percentile(10.0) <= h.percentile(99.0));
    }

    #[test]
    fn empty_histogram_percentiles_are_zero() {
        // The documented contract: every percentile of an empty histogram
        // is 0 / 0.0 — finite, deterministic, no NaN, no panic — so batch
        // merging can treat "kind never observed" as a zero distribution.
        let h = Histogram::new();
        for p in [0.0, 50.0, 99.0, 100.0, -5.0, 250.0] {
            assert_eq!(h.percentile_bound(p), 0, "percentile_bound({p})");
            let v = h.percentile(p);
            assert_eq!(v, 0.0, "percentile({p})");
            assert!(!v.is_nan());
        }
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn merging_empty_histograms_preserves_the_contract() {
        // empty ∪ empty is still empty…
        let mut e = Histogram::new();
        e.merge(&Histogram::new());
        assert_eq!(e.percentile(99.0), 0.0);
        assert_eq!(e.percentile_bound(50.0), 0);
        // …and empty ∪ populated behaves exactly like the populated side.
        let mut pop = Histogram::new();
        pop.record(8);
        e.merge(&pop);
        assert_eq!(e.percentile_bound(100.0), pop.percentile_bound(100.0));
        assert_eq!(e.percentile(100.0), pop.percentile(100.0));
    }

    #[test]
    fn histogram_merge_sums_everything() {
        let mut a = Histogram::new();
        a.record(1);
        a.record(100);
        let mut b = Histogram::new();
        b.record(5000);
        b.record(2);
        a.merge(&b);
        assert_eq!(a.count(), 4);
        assert_eq!(a.buckets().iter().sum::<u64>(), 4);
        assert!((a.mean() - (1 + 100 + 5000 + 2) as f64 / 4.0).abs() < 1e-12);
        // Merging an empty histogram is a no-op.
        let before = a.clone();
        a.merge(&Histogram::new());
        assert_eq!(a.count(), before.count());
        assert_eq!(a.buckets(), before.buckets());
    }
}
