//! Conservative lookahead-based parallel discrete-event executor.
//!
//! The serial engine pops one global `(time, seq)`-ordered queue. This
//! module parallelizes *within* one run while keeping that total order —
//! and therefore every report, trace, and snapshot — byte-identical at
//! any worker count. The classic obstacle is that a parallel DES must
//! never dispatch an event before every event that could causally precede
//! it; the classic answer (Chandy–Misra–Bryant conservative execution) is
//! **lookahead**: if every cross-shard interaction takes at least `L`
//! simulated time to propagate, then all events in the half-open window
//! `[T0, T0 + L)` are causally independent *across* shards and may run
//! concurrently, shard by shard.
//!
//! The executor runs bulk-synchronous windows:
//!
//! 1. **Drain** — pop every event before the horizon `H = T0 + L` from
//!    the global queue into per-shard *lanes*, remembering each event's
//!    original sequence number.
//! 2. **Dispatch** — run the lanes concurrently on a worker pool. A lane
//!    is a miniature sub-simulation: dispatching an event may schedule
//!    further same-shard events inside the window (they join the lane's
//!    local heap as *provisional* entries) or emit cross-shard *intents*
//!    (captured in an [`Outbox`], never applied during the window — the
//!    lookahead contract guarantees their effects land at or past `H`).
//!    Every dispatch is logged.
//! 3. **Replay** — back on the coordinating thread, merge the per-lane
//!    logs into the exact order the serial engine would have used
//!    (ascending `(time, seq)`, with provisional entries resolved to the
//!    sequence numbers the serial engine would have allocated) and apply
//!    the side effects in that order: allocate sequence numbers, insert
//!    post-horizon events into the global queue, and commit cross-shard
//!    intents.
//!
//! The replay step is what makes the parallel engine *deterministic
//! rather than merely correct*: shared state (fabric link occupancy,
//! global counters, fault-injector draws) is only ever touched during
//! replay, in serial order, so it evolves bit-identically to the serial
//! engine no matter how the window's dispatches interleaved on the host.
//!
//! The worker pool mirrors cni-batch's work-stealing idiom (per-worker
//! `Mutex<VecDeque>` deques, dealt round-robin, stolen from the back) —
//! the dependency direction (cni-batch sits above the engine) prevents
//! importing it outright. Workers are long-lived for the whole run and
//! park on a condvar between windows; windows with at most one active
//! lane are dispatched inline on the coordinator without waking anyone,
//! which keeps the single-core and single-shard cases cheap.
//!
//! See DESIGN.md §4.11 for the full model and the determinism proof
//! sketch, and `crates/sim/tests/pdes_props.rs` for the differential
//! property test pinning the executor against the serial queue.

use crate::time::SimTime;
use std::any::Any;
use std::collections::{BinaryHeap, VecDeque};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Condvar, Mutex};

/// Side effects captured while dispatching one event inside a window.
///
/// The driver's `dispatch` routes every state change that would touch the
/// global queue or cross-shard state through here, **in call order** —
/// the order is replayed verbatim to allocate sequence numbers exactly as
/// the serial engine would have.
pub struct Outbox<E, I> {
    items: Vec<Out<E, I>>,
    now: SimTime,
}

enum Out<E, I> {
    /// A same-shard schedule: the serial engine would have called
    /// `schedule_at(at, ev)` here.
    Local { at: SimTime, ev: E },
    /// A cross-shard intent: applied during replay, in serial order.
    Send(I),
}

impl<E, I> Default for Outbox<E, I> {
    fn default() -> Self {
        Outbox {
            items: Vec::new(),
            now: SimTime::ZERO,
        }
    }
}

impl<E, I> Outbox<E, I> {
    /// Record a same-shard event schedule.
    ///
    /// # Panics
    /// Panics if `at` is before the event being dispatched — the same
    /// retrograde-event check
    /// [`EventQueue::schedule_at`](crate::queue::EventQueue::schedule_at)
    /// applies on the serial path.
    pub fn local(&mut self, at: SimTime, ev: E) {
        assert!(
            at >= self.now,
            "event scheduled in the past: {:?} < {:?}",
            at,
            self.now
        );
        self.items.push(Out::Local { at, ev });
    }

    /// Record a cross-shard intent for replay-time commit.
    pub fn send(&mut self, intent: I) {
        self.items.push(Out::Send(intent));
    }

    /// True when nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

/// A simulation the executor can drive.
///
/// The trait splits the engine into the parts the executor must own (the
/// global queue, via the `pop_if_before` / `alloc_seq` /
/// `insert_with_seq` / `advance_now` quartet), the part that runs
/// concurrently (`dispatch`), and the parts that must stay serial
/// (`commit`, the window hooks).
///
/// # Safety
///
/// Implementors guarantee **shard isolation**: `dispatch(shard, …)` may
/// be called from worker threads, concurrently for *distinct* shards, and
/// must only read or write state owned by `shard` (plus the passed
/// outbox). Any state reachable from two different shard values — the
/// fabric, global counters, the fault injector, the queue — must only be
/// touched from `commit` and the window hooks, which the executor calls
/// exclusively from the coordinating thread. cni-lint's C1 shard-isolation
/// rule checks the in-tree implementation mechanically.
// SAFETY: the `# Safety` contract above (shard isolation) is what makes
// the executor's concurrent `dispatch` calls sound.
pub unsafe trait Driver {
    /// Event payload type of the global queue.
    type Ev: Send;
    /// Cross-shard side-effect description produced by `dispatch` and
    /// applied by `commit`.
    type Intent: Send;

    /// Number of shards. Events are partitioned by [`Driver::shard_of`]
    /// into `0..shards()`.
    fn shards(&self) -> usize;
    /// The shard that owns `ev` — the only shard whose state its dispatch
    /// may touch.
    fn shard_of(&self, ev: &Self::Ev) -> usize;

    /// Pop the earliest event strictly before `horizon` (with its
    /// sequence number), advancing the queue clock.
    fn pop_if_before(&mut self, horizon: SimTime) -> Option<(SimTime, u64, Self::Ev)>;
    /// Timestamp of the earliest pending event.
    fn peek_time(&self) -> Option<SimTime>;
    /// Allocate the next global sequence number (replay only).
    fn alloc_seq(&mut self) -> u64;
    /// Insert an event under a pre-allocated sequence number (replay only).
    fn insert_with_seq(&mut self, at: SimTime, seq: u64, ev: Self::Ev);
    /// Advance the queue clock to `t` (replay only).
    fn advance_now(&mut self, t: SimTime);

    /// Dispatch one event of `shard` at time `t`, capturing every queue
    /// schedule and cross-shard effect in `out`. Called concurrently for
    /// distinct shards; see the trait-level safety contract.
    fn dispatch(
        &self,
        shard: usize,
        t: SimTime,
        ev: Self::Ev,
        out: &mut Outbox<Self::Ev, Self::Intent>,
    );
    /// Apply one cross-shard intent. Called serially, in exact serial
    /// dispatch order, with the queue clock at the emitting event's time.
    fn commit(&mut self, t: SimTime, intent: Self::Intent);

    /// A new window `[T0, horizon)` is starting (serial).
    fn window_begin(&mut self, horizon: SimTime) {
        let _ = horizon;
    }
    /// A window finished replaying `dispatched` events (serial). Drivers
    /// fold per-shard scratch tallies into global state here.
    fn window_end(&mut self, dispatched: u64) {
        let _ = dispatched;
    }
    /// Replay reached the dispatch of a `shard` event at `t` — i.e. the
    /// serial engine would be popping this event right now. Test drivers
    /// use this to capture the reconstructed total order.
    fn replayed(&mut self, shard: usize, t: SimTime) {
        let _ = (shard, t);
    }
}

/// Lane-heap entry: a real (pre-drained) or provisional (window-created)
/// event. Ordered by `(at, kind, n)` — real before provisional at equal
/// times, which matches the final sequence order because every real
/// event's sequence number predates the window while provisional numbers
/// are allocated after it starts.
struct LaneEntry<E> {
    at: SimTime,
    /// 0 = real (n is the global seq), 1 = provisional (n is the lane-local
    /// provisional id, assigned in creation order).
    kind: u8,
    n: u64,
    ev: E,
}

impl<E> LaneEntry<E> {
    #[inline]
    fn rank(&self) -> (SimTime, u8, u64) {
        (self.at, self.kind, self.n)
    }
}

impl<E> PartialEq for LaneEntry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.rank() == other.rank()
    }
}
impl<E> Eq for LaneEntry<E> {}
impl<E> PartialOrd for LaneEntry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for LaneEntry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, lanes pop earliest-first.
        other.rank().cmp(&self.rank())
    }
}

/// One logged dispatch: where it sorts in the serial order, and the slice
/// of `LaneState::outs` it produced.
struct Rec {
    at: SimTime,
    /// 0 = real / 1 = provisional, same encoding as [`LaneEntry::kind`].
    kind: u8,
    n: u64,
    outs_start: u32,
    outs_len: u32,
}

/// Replay-side out record. `Local` entries for events that stayed inside
/// the window carry no payload (the lane already consumed them); entries
/// at or past the horizon defer the payload for queue insertion once the
/// real sequence number exists.
enum RecOut<E, I> {
    Local {
        prov: u32,
        at: SimTime,
        defer: Option<E>,
    },
    /// The `Option` is a consume-once slot: replay takes the intent out.
    Send(Option<I>),
}

/// Per-shard window state: the lane heap plus the dispatch log.
struct LaneState<E, I> {
    heap: BinaryHeap<LaneEntry<E>>,
    next_prov: u32,
    log: Vec<Rec>,
    outs: Vec<RecOut<E, I>>,
    /// Provisional id → the sequence number replay assigned it.
    resolved: Vec<u64>,
    outbox: Outbox<E, I>,
}

impl<E, I> Default for LaneState<E, I> {
    fn default() -> Self {
        LaneState {
            heap: BinaryHeap::new(),
            next_prov: 0,
            log: Vec::new(),
            outs: Vec::new(),
            resolved: Vec::new(),
            outbox: Outbox::default(),
        }
    }
}

/// Sequence-number sentinel for a provisional id not yet resolved.
const UNRESOLVED: u64 = u64::MAX;

/// Run one lane to the horizon: pop the lane heap in `(at, kind, n)`
/// order, dispatch each entry against the driver, and fold its outbox
/// into the log (window-local schedules re-enter the heap as provisional
/// entries; everything else is deferred to replay).
fn run_lane<D: Driver>(
    d: &D,
    shard: usize,
    horizon: SimTime,
    lane: &mut LaneState<D::Ev, D::Intent>,
) {
    while let Some(e) = lane.heap.pop() {
        debug_assert!(e.at < horizon);
        lane.outbox.now = e.at;
        d.dispatch(shard, e.at, e.ev, &mut lane.outbox);
        let outs_start = lane.outs.len() as u32;
        let mut items = std::mem::take(&mut lane.outbox.items);
        for out in items.drain(..) {
            match out {
                Out::Local { at, ev } => {
                    let prov = lane.next_prov;
                    lane.next_prov += 1;
                    if at < horizon {
                        // Stays inside the window: the lane dispatches it
                        // itself, after every real event at the same time.
                        lane.heap.push(LaneEntry {
                            at,
                            kind: 1,
                            n: u64::from(prov),
                            ev,
                        });
                        lane.outs.push(RecOut::Local {
                            prov,
                            at,
                            defer: None,
                        });
                    } else {
                        lane.outs.push(RecOut::Local {
                            prov,
                            at,
                            defer: Some(ev),
                        });
                    }
                }
                Out::Send(i) => lane.outs.push(RecOut::Send(Some(i))),
            }
        }
        lane.outbox.items = items; // keep the allocation across dispatches
        lane.log.push(Rec {
            at: e.at,
            kind: e.kind,
            n: e.n,
            outs_start,
            outs_len: lane.outs.len() as u32 - outs_start,
        });
    }
}

/// Coordinator/worker shared window control. `epoch` ticks once per
/// published window; `dptr` is the driver for that window, valid for
/// exactly as long as `remaining > 0` (see the safety argument on
/// [`Executor::run`]).
struct Ctl<D> {
    epoch: u64,
    horizon: SimTime,
    dptr: *const D,
    remaining: usize,
    shutdown: bool,
    panic: Option<Box<dyn Any + Send>>,
}

// `Ctl` crosses the worker-spawn boundary inside a `Mutex`; the raw
// driver pointer it carries is only dereferenced under the window
// protocol (below) and never stored past a window.
// SAFETY: `D: Sync` makes the shared dereference itself sound, as above.
unsafe impl<D: Sync> Send for Ctl<D> {}

/// Claim the next lane: own deque front-first, then steal from the back
/// of the next non-empty victim — cni-batch's `Pool::map` discipline.
fn next_lane(deques: &[Mutex<VecDeque<usize>>], w: usize) -> Option<usize> {
    if let Some(s) = deques[w].lock().unwrap().pop_front() {
        return Some(s);
    }
    for k in 1..deques.len() {
        if let Some(s) = deques[(w + k) % deques.len()].lock().unwrap().pop_back() {
            return Some(s);
        }
    }
    None
}

/// The parallel discrete-event executor. See the module docs for the
/// window model; `workers == 1` runs the identical window algorithm
/// without spawning any threads.
pub struct Executor {
    workers: usize,
    lookahead: SimTime,
}

impl Executor {
    /// An executor advancing `workers` lanes concurrently under a
    /// cross-shard `lookahead` (the minimum simulated time any event
    /// dispatched on one shard needs to affect another).
    ///
    /// # Panics
    /// Panics if `workers` is zero or `lookahead` is zero — a zero
    /// lookahead admits no window and the executor cannot make progress.
    pub fn new(workers: usize, lookahead: SimTime) -> Self {
        assert!(workers >= 1, "executor needs at least one worker");
        assert!(
            lookahead > SimTime::ZERO,
            "conservative execution needs a positive lookahead"
        );
        Executor { workers, lookahead }
    }

    /// Drive `d` to completion (empty queue), window by window. The
    /// resulting dispatch order — and every serial side effect — is
    /// byte-identical to the serial engine's at any worker count.
    pub fn run<D: Driver + Sync>(&self, d: &mut D) {
        let nshards = d.shards();
        let lanes: Vec<Mutex<LaneState<D::Ev, D::Intent>>> = (0..nshards)
            .map(|_| Mutex::new(LaneState::default()))
            .collect();
        let mut active: Vec<usize> = Vec::with_capacity(nshards);

        if self.workers == 1 {
            while let Some(t0) = d.peek_time() {
                let h = self.open_window(d, t0, &lanes, &mut active);
                for &s in &active {
                    run_lane(d, s, h, &mut lanes[s].lock().unwrap());
                }
                self.replay_window(d, &lanes, &active);
            }
            return;
        }

        let deques: Vec<Mutex<VecDeque<usize>>> = (0..self.workers)
            .map(|_| Mutex::new(VecDeque::new()))
            .collect();
        let ctl = Mutex::new(Ctl::<D> {
            epoch: 0,
            horizon: SimTime::ZERO,
            dptr: std::ptr::null(),
            remaining: 0,
            shutdown: false,
            panic: None,
        });
        let work_cv = Condvar::new();
        let done_cv = Condvar::new();

        std::thread::scope(|scope| {
            // Whatever happens below — normal completion or a panic
            // unwinding the coordinator — the workers must be released, or
            // `scope` would join forever.
            let _release = ShutdownGuard {
                ctl: &ctl,
                work_cv: &work_cv,
            };

            for w in 1..self.workers {
                let (ctl, work_cv, done_cv) = (&ctl, &work_cv, &done_cv);
                let (lanes, deques) = (&lanes, &deques);
                scope.spawn(move || {
                    let mut seen = 0u64;
                    loop {
                        let (dptr, horizon) = {
                            let mut g = ctl.lock().unwrap();
                            loop {
                                if g.shutdown {
                                    return;
                                }
                                if g.epoch > seen {
                                    seen = g.epoch;
                                    break (g.dptr, g.horizon);
                                }
                                g = work_cv.wait(g).unwrap();
                            }
                        };
                        // The coordinator published `dptr` for this epoch
                        // and will not touch the driver mutably (nor let
                        // `d` go out of scope) until every signed-up worker
                        // has decremented `remaining`; the mutex hand-offs
                        // order the accesses. Distinct lanes are distinct
                        // shards, so concurrent `dispatch` calls are
                        // covered by the Driver safety contract.
                        // SAFETY: publication + shard isolation, as above.
                        let dref: &D = unsafe { &*dptr };
                        while let Some(s) = next_lane(deques, w) {
                            let lane = &mut *lanes[s].lock().unwrap();
                            let r =
                                catch_unwind(AssertUnwindSafe(|| run_lane(dref, s, horizon, lane)));
                            if let Err(p) = r {
                                let mut g = ctl.lock().unwrap();
                                if g.panic.is_none() {
                                    g.panic = Some(p);
                                }
                            }
                        }
                        let mut g = ctl.lock().unwrap();
                        g.remaining -= 1;
                        if g.remaining == 0 {
                            done_cv.notify_one();
                        }
                    }
                });
            }

            while let Some(t0) = d.peek_time() {
                let h = self.open_window(d, t0, &lanes, &mut active);
                if active.len() <= 1 {
                    // Inline fast path: nothing to parallelize, don't wake
                    // the pool. The mutexes are uncontended here.
                    for &s in &active {
                        run_lane(&*d, s, h, &mut *lanes[s].lock().unwrap());
                    }
                } else {
                    // Deal the active lanes round-robin; every claimant
                    // (workers and the coordinator alike) owns one deque.
                    for (i, &s) in active.iter().enumerate() {
                        deques[i % self.workers].lock().unwrap().push_back(s);
                    }
                    // Freeze the driver behind a shared reborrow for the
                    // duration of the window; workers and coordinator read
                    // through it, nobody mutates until `remaining == 0`.
                    let dref: &D = &*d;
                    {
                        let mut g = ctl.lock().unwrap();
                        g.epoch += 1;
                        g.horizon = h;
                        g.dptr = dref as *const D;
                        g.remaining = self.workers - 1;
                    }
                    work_cv.notify_all();
                    // The coordinator claims lanes too (deque 0).
                    while let Some(s) = next_lane(&deques, 0) {
                        let lane = &mut *lanes[s].lock().unwrap();
                        let r = catch_unwind(AssertUnwindSafe(|| run_lane(dref, s, h, lane)));
                        if let Err(p) = r {
                            let mut g = ctl.lock().unwrap();
                            if g.panic.is_none() {
                                g.panic = Some(p);
                            }
                        }
                    }
                    let mut g = ctl.lock().unwrap();
                    while g.remaining > 0 {
                        g = done_cv.wait(g).unwrap();
                    }
                    if let Some(p) = g.panic.take() {
                        drop(g);
                        resume_unwind(p);
                    }
                }
                self.replay_window(d, &lanes, &active);
            }
        });
    }

    /// Open the window at `t0`: compute the horizon, drain every eligible
    /// event into its lane, and rebuild the active-lane list. Returns the
    /// horizon.
    fn open_window<D: Driver>(
        &self,
        d: &mut D,
        t0: SimTime,
        lanes: &[Mutex<LaneState<D::Ev, D::Intent>>],
        active: &mut Vec<usize>,
    ) -> SimTime {
        let h = SimTime::from_ps(t0.as_ps().saturating_add(self.lookahead.as_ps()));
        assert!(
            h > t0,
            "event horizon saturated: the parallel engine does not support \
             events at SimTime::MAX"
        );
        d.window_begin(h);
        active.clear();
        while let Some((at, seq, ev)) = d.pop_if_before(h) {
            let s = d.shard_of(&ev);
            let lane = &mut *lanes[s].lock().unwrap();
            if lane.heap.is_empty() && lane.log.is_empty() {
                active.push(s);
            }
            lane.heap.push(LaneEntry {
                at,
                kind: 0,
                n: seq,
                ev,
            });
        }
        active.sort_unstable();
        h
    }

    /// Replay the window's per-lane logs in global serial order and apply
    /// every deferred side effect. Serial, coordinator only.
    fn replay_window<D: Driver>(
        &self,
        d: &mut D,
        lanes: &[Mutex<LaneState<D::Ev, D::Intent>>],
        active: &[usize],
    ) {
        let mut dispatched = 0u64;
        // Merge the lane logs by resolved key. A lane's log is already in
        // its own serial order, so a heap of lane fronts suffices; a
        // front's key is always resolvable because a provisional event's
        // creating record precedes it in the same lane.
        let mut fronts: BinaryHeap<std::cmp::Reverse<(u128, usize)>> = BinaryHeap::new();
        let mut cursors = vec![0usize; active.len()];
        for (li, &s) in active.iter().enumerate() {
            let lane = &mut *lanes[s].lock().unwrap();
            lane.resolved.clear();
            lane.resolved.resize(lane.next_prov as usize, UNRESOLVED);
            if !lane.log.is_empty() {
                let key = front_key(lane, 0);
                fronts.push(std::cmp::Reverse((key, li)));
            }
        }
        while let Some(std::cmp::Reverse((_, li))) = fronts.pop() {
            let s = active[li];
            let i = cursors[li];
            cursors[li] += 1;
            let lane = &mut *lanes[s].lock().unwrap();
            let rec = &lane.log[i];
            let (rec_at, outs_start, outs_len) =
                (rec.at, rec.outs_start as usize, rec.outs_len as usize);
            d.advance_now(rec_at);
            d.replayed(s, rec_at);
            dispatched += 1;
            let (outs, resolved) = (&mut lane.outs, &mut lane.resolved);
            for out in &mut outs[outs_start..outs_start + outs_len] {
                match out {
                    RecOut::Local { prov, at, defer } => {
                        let seq = d.alloc_seq();
                        resolved[*prov as usize] = seq;
                        if let Some(ev) = defer.take() {
                            d.insert_with_seq(*at, seq, ev);
                        }
                    }
                    RecOut::Send(slot) => {
                        let intent = slot.take().expect("intent committed twice");
                        d.commit(rec_at, intent);
                    }
                }
            }
            if cursors[li] < lane.log.len() {
                let key = front_key(lane, cursors[li]);
                fronts.push(std::cmp::Reverse((key, li)));
            }
        }
        for &s in active {
            let lane = &mut *lanes[s].lock().unwrap();
            debug_assert!(lane.heap.is_empty());
            lane.log.clear();
            lane.outs.clear();
            lane.next_prov = 0;
        }
        d.window_end(dispatched);
    }
}

/// The resolved `(time, seq)` key of a lane-log record, packed exactly
/// like the global queue's heap key so the merge reproduces its order.
fn front_key<E, I>(lane: &LaneState<E, I>, i: usize) -> u128 {
    let rec = &lane.log[i];
    let seq = if rec.kind == 0 {
        rec.n
    } else {
        let s = lane.resolved[rec.n as usize];
        debug_assert_ne!(
            s, UNRESOLVED,
            "provisional event replayed before its parent"
        );
        s
    };
    (u128::from(rec.at.as_ps()) << 64) | u128::from(seq)
}

/// Releases parked workers when the coordinator leaves its scope —
/// normally or by unwinding — so `std::thread::scope` can join them.
struct ShutdownGuard<'a, D> {
    ctl: &'a Mutex<Ctl<D>>,
    work_cv: &'a Condvar,
}

impl<D> Drop for ShutdownGuard<'_, D> {
    fn drop(&mut self) {
        // A lock poisoned by a panicking worker must not stop the
        // release, or the scope join would deadlock mid-unwind.
        let mut g = self
            .ctl
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        g.shutdown = true;
        drop(g);
        self.work_cv.notify_all();
    }
}

/// Reference serial engine used by the differential tests: pops the
/// global queue one event at a time, dispatching through the same
/// [`Driver`] interface (with every outbox effect applied immediately, in
/// call order — the semantics the parallel engine must reproduce).
///
/// This is **not** the production serial path (the engine's own event
/// loop is), but it is the executable specification the property tests
/// compare the executor against.
pub fn run_serial<D: Driver>(d: &mut D) {
    let mut out = Outbox::default();
    while let Some((at, _seq, ev)) = d.pop_if_before(SimTime::MAX) {
        d.advance_now(at);
        let shard = d.shard_of(&ev);
        d.replayed(shard, at);
        out.now = at;
        d.dispatch(shard, at, ev, &mut out);
        let items = std::mem::take(&mut out.items);
        for o in items {
            match o {
                Out::Local { at, ev } => {
                    let seq = d.alloc_seq();
                    d.insert_with_seq(at, seq, ev);
                }
                Out::Send(i) => d.commit(at, i),
            }
        }
    }
}
