//! Deterministic event queue.
//!
//! A hand-rolled 4-ary min-heap keyed by `(time, sequence)`: timestamp
//! ties break by insertion sequence number, making event delivery a pure
//! function of the insertion order. Determinism is what lets the whole
//! reproduction assert bit-identical results across runs (see the
//! integration tests).
//!
//! Why 4-ary instead of `std::collections::BinaryHeap`? The simulation
//! spends a measurable slice of every run churning this structure (the
//! `hotpath` bench in cni-bench tracks it). A 4-ary layout halves the tree
//! depth, so the pop-side sift-down — the expensive direction — touches
//! half as many levels, and all four children share a cache line pair.
//! The total order on `(at, seq)` is strict (sequence numbers are unique),
//! so *any* correct heap pops the identical stream; the differential
//! property test below pins the new heap against the previous
//! `BinaryHeap`-based implementation (`RefQueue`, kept under
//! `#[cfg(test)]`) event for event.
//!
//! On top of the plain push/pop the queue offers the hot-path entry
//! points the engine uses:
//!
//! * [`EventQueue::peek`] — O(1) access to the head event (the root).
//! * [`EventQueue::schedule_batch_at`] — bulk insert of an event train at
//!   one timestamp (e.g. the time-zero processor resumes); sequence
//!   numbers are assigned in iteration order, exactly as repeated
//!   [`EventQueue::schedule_at`] calls would.

use crate::time::SimTime;
use cni_trace::{TraceEvent, TraceSink, NO_NODE};

/// Heap arity. Four keeps the tree shallow (log₄ n levels) while the
/// children of a node stay adjacent in memory.
const ARITY: usize = 4;

/// Heap entry. The ordering key packs `(at, seq)` into one `u128`
/// (`at.as_ps() << 64 | seq`), computed once at insert: a single integer
/// compare per heap step instead of a two-field lexicographic compare
/// with a branch between the fields. The packing is order-preserving, so
/// the induced total order is exactly `(at, seq)`.
struct Entry<E> {
    key: u128,
    event: E,
}

impl<E> Entry<E> {
    #[inline]
    fn at(&self) -> SimTime {
        SimTime::from_ps((self.key >> 64) as u64)
    }

    #[inline]
    fn seq(&self) -> u64 {
        self.key as u64
    }
}

#[inline]
fn pack_key(at: SimTime, seq: u64) -> u128 {
    (u128::from(at.as_ps()) << 64) | u128::from(seq)
}

/// A priority queue of timed events with deterministic tie-breaking.
pub struct EventQueue<E> {
    heap: Vec<Entry<E>>,
    next_seq: u64,
    now: SimTime,
    trace: TraceSink,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: Vec::new(),
            next_seq: 0,
            now: SimTime::ZERO,
            trace: TraceSink::Disabled,
        }
    }

    /// Attach a trace sink: every pop advances the sink's virtual clock and
    /// records a `QueueDispatch` event. The default sink is disabled and
    /// costs one enum branch per pop.
    pub fn set_trace(&mut self, trace: TraceSink) {
        self.trace = trace;
    }

    /// The current virtual time: the timestamp of the last event popped.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule `event` at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is in the past — the simulation has no time machine,
    /// and a retrograde event is always a modelling bug.
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        // cni-lint: allow(panic-path) -- the DES's central sanity check, documented under # Panics: a retrograde event is always a modelling bug and must never be absorbed
        assert!(
            at >= self.now,
            "event scheduled in the past: {:?} < {:?}",
            at,
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry {
            key: pack_key(at, seq),
            event,
        });
        self.sift_up(self.heap.len() - 1);
    }

    /// Schedule `event` after a delay from the current time.
    pub fn schedule_after(&mut self, delay: SimTime, event: E) {
        self.schedule_at(self.now + delay, event);
    }

    /// Bulk-insert a train of events sharing one timestamp. Sequence
    /// numbers are assigned in iteration order, so the train pops in
    /// iteration order — byte-identical to calling
    /// [`EventQueue::schedule_at`] once per event, but each sift starts
    /// from a key already known to be the heap's largest sequence at that
    /// time, which keeps the per-event cost at the leaf level.
    ///
    /// # Panics
    /// Panics if `at` is in the past.
    pub fn schedule_batch_at(&mut self, at: SimTime, events: impl IntoIterator<Item = E>) {
        for event in events {
            self.schedule_at(at, event);
        }
    }

    /// Remove and return the earliest event, advancing `now` to its time.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        if self.heap.is_empty() {
            return None;
        }
        let e = self.heap.swap_remove(0);
        if !self.heap.is_empty() {
            self.sift_down(0);
        }
        let at = e.at();
        debug_assert!(at >= self.now);
        self.now = at;
        if self.trace.is_enabled() {
            self.trace.set_now(at.as_ps());
            self.trace.emit(
                NO_NODE,
                TraceEvent::QueueDispatch {
                    seq: e.seq(),
                    pending: self.heap.len() as u32,
                },
            );
        }
        Some((at, e.event))
    }

    /// Remove and return the earliest event strictly before `horizon`.
    /// Returns `None` when the queue is empty or the head event is at or
    /// past the horizon. Unlike [`EventQueue::pop`] the sequence number is
    /// surfaced too, and **`now` is not advanced** (nor is a queue trace
    /// emitted): the parallel executor drains a whole window ahead of
    /// dispatching it and advances the clock in serial replay order via
    /// [`EventQueue::advance_now`]. (The parallel engine only runs with
    /// tracing disabled, so no `QueueDispatch` records are lost.)
    pub fn pop_if_before(&mut self, horizon: SimTime) -> Option<(SimTime, u64, E)> {
        if self.heap.first()?.at() >= horizon {
            return None;
        }
        let e = self.heap.swap_remove(0);
        if !self.heap.is_empty() {
            self.sift_down(0);
        }
        let at = e.at();
        debug_assert!(at >= self.now);
        Some((at, e.seq(), e.event))
    }

    /// Allocate and return the next sequence number without scheduling an
    /// event. The parallel executor allocates sequence numbers during its
    /// serial replay barrier in exactly the order the serial engine would
    /// have assigned them, then inserts the corresponding events with
    /// [`EventQueue::insert_with_seq`].
    pub fn alloc_seq(&mut self) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        seq
    }

    /// Insert an event under a caller-supplied sequence number previously
    /// obtained from [`EventQueue::alloc_seq`]. The entry sorts exactly as
    /// if it had been scheduled by [`EventQueue::schedule_at`] at the
    /// moment the sequence number was allocated.
    ///
    /// # Panics
    /// Panics if `at` is in the past or `seq` was never allocated — either
    /// is a lookahead or bookkeeping bug in the parallel executor.
    pub fn insert_with_seq(&mut self, at: SimTime, seq: u64, event: E) {
        assert!(
            at >= self.now,
            "event scheduled in the past: {:?} < {:?}",
            at,
            self.now
        );
        assert!(
            seq < self.next_seq,
            "seq {seq} was never allocated (next_seq {})",
            self.next_seq
        );
        self.heap.push(Entry {
            key: pack_key(at, seq),
            event,
        });
        self.sift_up(self.heap.len() - 1);
    }

    /// Advance the queue clock to `t` without popping an event. The
    /// parallel executor's replay barrier dispatches events it drained
    /// from the heap earlier in the window, and uses this to keep `now`
    /// (the reference for the retrograde-event check) in step.
    ///
    /// # Panics
    /// Panics if `t` is before the current time.
    pub fn advance_now(&mut self, t: SimTime) {
        assert!(
            t >= self.now,
            "queue clock moved backwards: {:?} < {:?}",
            t,
            self.now
        );
        self.now = t;
    }

    /// The earliest event (time and payload) without removing it. O(1):
    /// the head is the heap root.
    pub fn peek(&self) -> Option<(SimTime, &E)> {
        self.heap.first().map(|e| (e.at(), &e.event))
    }

    /// Timestamp of the next event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.first().map(|e| e.at())
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Walk the pending entries in internal heap-array order as
    /// `(at, seq, &event)` triples, for checkpointing. Feeding the same
    /// sequence to [`EventQueue::from_snapshot`] rebuilds a queue with the
    /// identical internal layout, so subsequent pops — and therefore the
    /// whole simulation — proceed byte-identically.
    pub fn snapshot_entries(&self) -> impl Iterator<Item = (SimTime, u64, &E)> {
        self.heap.iter().map(|e| (e.at(), e.seq(), &e.event))
    }

    /// The sequence number the next scheduled event will receive.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Rebuild a queue from a checkpoint taken with
    /// [`EventQueue::snapshot_entries`]. `entries` must be in the captured
    /// heap-array order. Returns `Err` (never panics) if the entries do not
    /// form a valid heap or the counters are inconsistent — i.e. the
    /// snapshot bytes were tampered with or torn.
    pub fn from_snapshot(
        now: SimTime,
        next_seq: u64,
        entries: Vec<(SimTime, u64, E)>,
    ) -> Result<Self, String> {
        let heap: Vec<Entry<E>> = entries
            .into_iter()
            .map(|(at, seq, event)| Entry {
                key: pack_key(at, seq),
                event,
            })
            .collect();
        for (i, e) in heap.iter().enumerate() {
            if i > 0 {
                let parent = (i - 1) / ARITY;
                if heap[parent].key > e.key {
                    return Err(format!(
                        "event queue snapshot violates heap order at index {i}"
                    ));
                }
            }
            if e.seq() >= next_seq {
                return Err(format!(
                    "event seq {} not below next_seq {next_seq}",
                    e.seq()
                ));
            }
            if e.at() < now {
                return Err(format!(
                    "pending event at {:?} is before queue time {:?}",
                    e.at(),
                    now
                ));
            }
        }
        Ok(EventQueue {
            heap,
            next_seq,
            now,
            trace: TraceSink::Disabled,
        })
    }

    fn sift_up(&mut self, mut i: usize) {
        // The moving entry's key is loop-invariant: read it once.
        let key = self.heap[i].key;
        while i > 0 {
            let parent = (i - 1) / ARITY;
            if key < self.heap[parent].key {
                self.heap.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        let len = self.heap.len();
        let key = self.heap[i].key;
        loop {
            let first = i * ARITY + 1;
            if first >= len {
                break;
            }
            // Smallest key among the (up to four) children.
            let last = (first + ARITY).min(len);
            let mut min = first;
            let mut min_key = self.heap[first].key;
            for c in (first + 1)..last {
                let k = self.heap[c].key;
                if k < min_key {
                    min = c;
                    min_key = k;
                }
            }
            if min_key < key {
                self.heap.swap(i, min);
                i = min;
            } else {
                break;
            }
        }
    }
}

/// The previous `BinaryHeap`-backed implementation, kept verbatim as the
/// oracle for the differential property test: the 4-ary heap must dequeue
/// an identical `(time, seq, event)` stream for any schedule.
#[cfg(test)]
mod reference {
    use super::SimTime;
    use std::cmp::Ordering;
    use std::collections::BinaryHeap;

    pub struct Entry<E> {
        pub at: SimTime,
        pub seq: u64,
        pub event: E,
    }

    impl<E> PartialEq for Entry<E> {
        fn eq(&self, other: &Self) -> bool {
            self.at == other.at && self.seq == other.seq
        }
    }
    impl<E> Eq for Entry<E> {}

    impl<E> PartialOrd for Entry<E> {
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }

    impl<E> Ord for Entry<E> {
        fn cmp(&self, other: &Self) -> Ordering {
            // Reversed: BinaryHeap is a max-heap, we want earliest first.
            (other.at, other.seq).cmp(&(self.at, self.seq))
        }
    }

    pub struct RefQueue<E> {
        heap: BinaryHeap<Entry<E>>,
        next_seq: u64,
        now: SimTime,
    }

    impl<E> RefQueue<E> {
        pub fn new() -> Self {
            RefQueue {
                heap: BinaryHeap::new(),
                next_seq: 0,
                now: SimTime::ZERO,
            }
        }

        pub fn now(&self) -> SimTime {
            self.now
        }

        pub fn schedule_at(&mut self, at: SimTime, event: E) {
            assert!(at >= self.now, "event scheduled in the past");
            let seq = self.next_seq;
            self.next_seq += 1;
            self.heap.push(Entry { at, seq, event });
        }

        pub fn pop(&mut self) -> Option<(SimTime, E)> {
            self.heap.pop().map(|e| {
                self.now = e.at;
                (e.at, e.event)
            })
        }

        pub fn peek_time(&self) -> Option<SimTime> {
            self.heap.peek().map(|e| e.at)
        }

        pub fn len(&self) -> usize {
            self.heap.len()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::reference::RefQueue;
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_ns(30), "c");
        q.schedule_at(SimTime::from_ns(10), "a");
        q.schedule_at(SimTime::from_ns(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn equal_times_pop_in_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule_at(SimTime::from_ns(5), i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn now_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_ns(10), ());
        q.schedule_after(SimTime::from_ns(5), ()); // at t=5, before first pop now=0
        assert_eq!(q.now(), SimTime::ZERO);
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_ns(5));
        assert_eq!(q.now(), SimTime::from_ns(5));
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_ns(10));
        assert!(q.pop().is_none());
        assert_eq!(q.now(), SimTime::from_ns(10));
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_ns(10), ());
        q.pop();
        q.schedule_at(SimTime::from_ns(9), ());
    }

    #[test]
    fn len_and_is_empty() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule_at(SimTime::from_ns(1), ());
        q.schedule_at(SimTime::from_ns(2), ());
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn peek_sees_the_head_without_consuming() {
        let mut q = EventQueue::new();
        assert!(q.peek().is_none());
        q.schedule_at(SimTime::from_ns(20), "later");
        q.schedule_at(SimTime::from_ns(10), "first");
        assert_eq!(q.peek(), Some((SimTime::from_ns(10), &"first")));
        assert_eq!(q.len(), 2, "peek must not consume");
        assert_eq!(q.pop(), Some((SimTime::from_ns(10), "first")));
        assert_eq!(q.peek(), Some((SimTime::from_ns(20), &"later")));
    }

    #[test]
    fn batch_insert_pops_in_iteration_order() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_ns(3), 100);
        q.schedule_batch_at(SimTime::from_ns(3), 0..10);
        q.schedule_at(SimTime::from_ns(1), 200);
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        let mut expect = vec![200, 100];
        expect.extend(0..10);
        assert_eq!(order, expect);
    }

    #[test]
    fn max_sentinel_pops_last_and_ties_stay_stable() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::MAX, "end-a");
        q.schedule_at(SimTime::from_ns(1), "work");
        q.schedule_at(SimTime::MAX, "end-b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["work", "end-a", "end-b"]);
    }

    #[test]
    fn pop_if_before_respects_the_horizon() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_ns(10), "a");
        q.schedule_at(SimTime::from_ns(10), "b");
        q.schedule_at(SimTime::from_ns(20), "c");
        // Horizon at the head's exact time: the head is NOT eligible
        // (the window is half-open, [T0, H)).
        assert_eq!(q.pop_if_before(SimTime::from_ns(10)), None);
        assert_eq!(
            q.pop_if_before(SimTime::from_ns(15)),
            Some((SimTime::from_ns(10), 0, "a"))
        );
        assert_eq!(
            q.pop_if_before(SimTime::from_ns(15)),
            Some((SimTime::from_ns(10), 1, "b"))
        );
        assert_eq!(q.pop_if_before(SimTime::from_ns(15)), None);
        assert_eq!(q.now(), SimTime::ZERO, "draining does not move the clock");
        assert_eq!(
            q.pop_if_before(SimTime::MAX),
            Some((SimTime::from_ns(20), 2, "c"))
        );
        assert_eq!(q.pop_if_before(SimTime::MAX), None, "empty queue");
    }

    #[test]
    fn alloc_seq_and_insert_with_seq_match_schedule_at() {
        // Two queues, same logical schedule: one through schedule_at, one
        // through the executor's split alloc/insert path. Identical pops.
        let mut a = EventQueue::new();
        let mut b = EventQueue::new();
        a.schedule_at(SimTime::from_ns(7), 0);
        a.schedule_at(SimTime::from_ns(7), 1);
        a.schedule_at(SimTime::from_ns(3), 2);
        let s0 = b.alloc_seq();
        let s1 = b.alloc_seq();
        let s2 = b.alloc_seq();
        // Out-of-order insertion: the allocated seq, not insert order, rules.
        b.insert_with_seq(SimTime::from_ns(3), s2, 2);
        b.insert_with_seq(SimTime::from_ns(7), s1, 1);
        b.insert_with_seq(SimTime::from_ns(7), s0, 0);
        assert_eq!(a.next_seq(), b.next_seq());
        while let Some(got) = a.pop() {
            assert_eq!(Some(got), b.pop());
        }
        assert_eq!(b.pop(), None);
    }

    #[test]
    #[should_panic(expected = "never allocated")]
    fn insert_with_unallocated_seq_panics() {
        let mut q = EventQueue::new();
        q.insert_with_seq(SimTime::from_ns(1), 0, ());
    }

    #[test]
    fn advance_now_moves_the_clock_forward() {
        let mut q: EventQueue<()> = EventQueue::new();
        q.advance_now(SimTime::from_ns(40));
        assert_eq!(q.now(), SimTime::from_ns(40));
        q.advance_now(SimTime::from_ns(40)); // same time is fine
    }

    #[test]
    #[should_panic(expected = "moved backwards")]
    fn advance_now_rejects_retrograde_time() {
        let mut q: EventQueue<()> = EventQueue::new();
        q.advance_now(SimTime::from_ns(40));
        q.advance_now(SimTime::from_ns(39));
    }

    // ---- Differential tests against the old BinaryHeap implementation ----

    /// Drive both queues through one interleaved schedule. Op meanings:
    /// 0 => insert at now + delta, 1 => insert at now (a guaranteed tie),
    /// 2 => insert a `SimTime::MAX` sentinel, 3 => bulk-insert a 3-event
    /// train at now + delta, anything else => pop (advancing both clocks).
    fn drive(ops: &[(u8, u64)]) -> Result<(), TestCaseError> {
        let mut q: EventQueue<u32> = EventQueue::new();
        let mut r: RefQueue<u32> = RefQueue::new();
        let mut id = 0u32;
        for &(op, delta) in ops {
            match op {
                0 | 1 => {
                    let d = if op == 1 { 0 } else { delta };
                    // Saturating: schedules after a MAX pop stay at MAX.
                    let at = SimTime::from_ps(q.now().as_ps().saturating_add(d));
                    q.schedule_at(at, id);
                    r.schedule_at(at, id);
                    id += 1;
                }
                2 => {
                    q.schedule_at(SimTime::MAX, id);
                    r.schedule_at(SimTime::MAX, id);
                    id += 1;
                }
                3 => {
                    let at = SimTime::from_ps(q.now().as_ps().saturating_add(delta));
                    q.schedule_batch_at(at, id..id + 3);
                    for e in id..id + 3 {
                        r.schedule_at(at, e);
                    }
                    id += 3;
                }
                _ => {
                    prop_assert_eq!(q.pop(), r.pop());
                    prop_assert_eq!(q.now(), r.now());
                }
            }
            prop_assert_eq!(q.len(), r.len());
            prop_assert_eq!(q.peek_time(), r.peek_time());
        }
        // Drain both: the remaining streams must match to the last event.
        while let Some(got) = q.pop() {
            prop_assert_eq!(Some(got), r.pop());
        }
        prop_assert_eq!(r.pop(), None);
        Ok(())
    }

    proptest! {
        #[test]
        fn four_ary_heap_matches_reference_queue(
            ops in proptest::collection::vec((0u8..6, 0u64..2000), 0..400),
        ) {
            drive(&ops)?;
        }

        #[test]
        fn four_ary_heap_matches_reference_on_tie_storms(
            // Deltas drawn from {0, 1}: nearly everything collides, so the
            // sequence tie-break carries the whole ordering.
            ops in proptest::collection::vec((0u8..6, 0u64..2), 0..300),
        ) {
            drive(&ops)?;
        }

        /// Checkpoint satellite: after an arbitrary schedule/pop prefix,
        /// snapshotting and restoring the queue must preserve the exact
        /// `(time, seq)` pop order for the rest of the run — including new
        /// events scheduled after the restore, whose sequence numbers must
        /// continue from the snapshot's `next_seq`.
        #[test]
        fn snapshot_round_trip_preserves_pop_stream(
            ops in proptest::collection::vec((0u8..4, 0u64..500), 0..200),
            post in proptest::collection::vec(0u64..500, 0..40),
        ) {
            let mut q: EventQueue<u32> = EventQueue::new();
            let mut id = 0u32;
            for &(op, delta) in &ops {
                if op < 3 {
                    let at = SimTime::from_ps(q.now().as_ps().saturating_add(delta));
                    q.schedule_at(at, id);
                    id += 1;
                } else {
                    q.pop();
                }
            }
            let entries: Vec<_> = q
                .snapshot_entries()
                .map(|(at, seq, e)| (at, seq, *e))
                .collect();
            let mut restored =
                EventQueue::from_snapshot(q.now(), q.next_seq(), entries).unwrap();
            prop_assert_eq!(restored.len(), q.len());
            prop_assert_eq!(restored.now(), q.now());
            // Diverge-free tail: schedule the same suffix into both queues…
            for &delta in &post {
                let at = SimTime::from_ps(q.now().as_ps().saturating_add(delta));
                q.schedule_at(at, id);
                restored.schedule_at(at, id);
                id += 1;
            }
            // …and drain: identical (time, event) streams, pop for pop.
            while let Some(got) = q.pop() {
                prop_assert_eq!(Some(got), restored.pop());
            }
            prop_assert_eq!(restored.pop(), None);
        }
    }

    #[test]
    fn snapshot_rejects_tampered_entries() {
        let mut q: EventQueue<&str> = EventQueue::new();
        q.schedule_at(SimTime::from_ns(5), "a");
        q.schedule_at(SimTime::from_ns(1), "b");
        let mut entries: Vec<_> = q
            .snapshot_entries()
            .map(|(at, seq, e)| (at, seq, *e))
            .collect();
        // Heap-order violation: force the root later than its child.
        entries[0].0 = SimTime::from_ns(50);
        assert!(EventQueue::from_snapshot(q.now(), q.next_seq(), entries).is_err());
        // Seq outside the counter range.
        let bad = vec![(SimTime::from_ns(5), 99u64, "x")];
        assert!(EventQueue::from_snapshot(SimTime::ZERO, 2, bad).is_err());
        // Pending event before the restored clock.
        let bad = vec![(SimTime::from_ns(5), 0u64, "x")];
        assert!(EventQueue::from_snapshot(SimTime::from_us(1), 2, bad).is_err());
    }
}
