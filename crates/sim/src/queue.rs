//! Deterministic event queue.
//!
//! A thin wrapper over `BinaryHeap` that breaks timestamp ties by insertion
//! sequence number, making event delivery a pure function of the insertion
//! order. Determinism is what lets the whole reproduction assert
//! bit-identical results across runs (see the integration tests).

use crate::time::SimTime;
use cni_trace::{TraceEvent, TraceSink, NO_NODE};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// A priority queue of timed events with deterministic tie-breaking.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    now: SimTime,
    trace: TraceSink,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: SimTime::ZERO,
            trace: TraceSink::Disabled,
        }
    }

    /// Attach a trace sink: every pop advances the sink's virtual clock and
    /// records a `QueueDispatch` event. The default sink is disabled and
    /// costs one enum branch per pop.
    pub fn set_trace(&mut self, trace: TraceSink) {
        self.trace = trace;
    }

    /// The current virtual time: the timestamp of the last event popped.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule `event` at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is in the past — the simulation has no time machine,
    /// and a retrograde event is always a modelling bug.
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "event scheduled in the past: {:?} < {:?}",
            at,
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, event });
    }

    /// Schedule `event` after a delay from the current time.
    pub fn schedule_after(&mut self, delay: SimTime, event: E) {
        self.schedule_at(self.now + delay, event);
    }

    /// Remove and return the earliest event, advancing `now` to its time.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| {
            debug_assert!(e.at >= self.now);
            self.now = e.at;
            if self.trace.is_enabled() {
                self.trace.set_now(e.at.as_ps());
                self.trace.emit(
                    NO_NODE,
                    TraceEvent::QueueDispatch {
                        seq: e.seq,
                        pending: self.heap.len() as u32,
                    },
                );
            }
            (e.at, e.event)
        })
    }

    /// Timestamp of the next event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_ns(30), "c");
        q.schedule_at(SimTime::from_ns(10), "a");
        q.schedule_at(SimTime::from_ns(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn equal_times_pop_in_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule_at(SimTime::from_ns(5), i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn now_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_ns(10), ());
        q.schedule_after(SimTime::from_ns(5), ()); // at t=5, before first pop now=0
        assert_eq!(q.now(), SimTime::ZERO);
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_ns(5));
        assert_eq!(q.now(), SimTime::from_ns(5));
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_ns(10));
        assert!(q.pop().is_none());
        assert_eq!(q.now(), SimTime::from_ns(10));
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_ns(10), ());
        q.pop();
        q.schedule_at(SimTime::from_ns(9), ());
    }

    #[test]
    fn len_and_is_empty() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule_at(SimTime::from_ns(1), ());
        q.schedule_at(SimTime::from_ns(2), ());
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }
}
