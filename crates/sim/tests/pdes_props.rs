//! Differential property tests for the parallel executor
//! (`cni_sim::pdes`): arbitrary event schedules — random times, fan-out
//! across shards, cross-shard sends landing at and past the lookahead
//! horizon, ties on `(time, seq)` — must dispatch in **exactly** the
//! serial engine's total order, allocate the same sequence numbers, and
//! commit cross-shard intents at the same points. The same discipline as
//! the PR 5 `RefQueue` differential test: a dumb executable specification
//! ([`run_serial`]) against the real implementation, driven by proptest.

use cni_sim::pdes::{run_serial, Driver, Executor, Outbox};
use cni_sim::{EventQueue, SimTime};
use proptest::prelude::*;
use std::sync::Mutex;

/// Cross-shard lookahead for every test, in picoseconds.
const L: u64 = 1_000;

/// One toy event: a generation-bounded self-replicating workload item.
#[derive(Clone, Debug)]
struct ToyEv {
    shard: usize,
    id: u64,
    gen: u8,
}

/// A cross-shard message: schedule `ToyEv { shard: dst, id, gen }` at
/// `at` (always `>= horizon` for a contract-honouring driver).
#[derive(Debug)]
struct ToyIntent {
    dst: usize,
    at: SimTime,
    id: u64,
    gen: u8,
}

/// splitmix64 finalizer: the deterministic "work" a dispatch performs.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The toy driver. Per-shard state is a hash accumulator chained over
/// the shard's own dispatch history — any reordering *within* a shard
/// changes the final hashes, any reordering *across* shards changes the
/// `order`/`commits` logs, and any sequence-allocation drift changes
/// `q.next_seq()`; the test compares all of them against serial.
struct Toy {
    q: EventQueue<ToyEv>,
    shards: usize,
    /// Per-shard accumulators — the only state `dispatch` touches. The
    /// mutexes are uncontended (one event of one shard at a time) and
    /// exist to make the concurrent-dispatch access pattern safe without
    /// raw pointers in a test.
    state: Vec<Mutex<u64>>,
    /// The reconstructed serial total order, from the `replayed` hook.
    order: Vec<(u64, usize)>,
    /// Commit order of cross-shard intents.
    commits: Vec<(u64, usize, u64)>,
    /// Horizon of the open window (the conservative-lookahead contract
    /// check in `commit`); `None` outside the parallel engine.
    horizon: Option<SimTime>,
    /// When true, `dispatch` emits sends *below* the horizon — a
    /// deliberate contract violation for the detection test.
    violate_lookahead: bool,
}

impl Toy {
    fn new(shards: usize) -> Self {
        Toy {
            q: EventQueue::new(),
            shards,
            state: (0..shards).map(|_| Mutex::new(0)).collect(),
            order: Vec::new(),
            commits: Vec::new(),
            horizon: None,
            violate_lookahead: false,
        }
    }

    /// Everything observable about a finished run.
    fn fingerprint(self) -> Fingerprint {
        let hashes = self.state.iter().map(|m| *m.lock().unwrap()).collect();
        (self.order, self.commits, hashes, self.q.next_seq())
    }
}

// Workers only ever call `dispatch`, which touches nothing but the
// per-shard `Mutex`-protected accumulator; all other fields are reached
// from `&mut self` methods the executor calls serially.
// SAFETY: the shared state is sync-wrapped, as above.
unsafe impl Sync for Toy {}

// The per-shard accumulator is the only state `dispatch` touches, and it
// is indexed by the dispatched shard — shard isolation holds by shape.
// SAFETY: dispatch touches only state owned by `shard` (see above).
unsafe impl Driver for Toy {
    type Ev = ToyEv;
    type Intent = ToyIntent;

    fn shards(&self) -> usize {
        self.shards
    }
    fn shard_of(&self, ev: &ToyEv) -> usize {
        ev.shard
    }
    fn pop_if_before(&mut self, horizon: SimTime) -> Option<(SimTime, u64, ToyEv)> {
        self.q.pop_if_before(horizon)
    }
    fn peek_time(&self) -> Option<SimTime> {
        self.q.peek_time()
    }
    fn alloc_seq(&mut self) -> u64 {
        self.q.alloc_seq()
    }
    fn insert_with_seq(&mut self, at: SimTime, seq: u64, ev: ToyEv) {
        self.q.insert_with_seq(at, seq, ev)
    }
    fn advance_now(&mut self, t: SimTime) {
        self.q.advance_now(t)
    }

    fn dispatch(&self, shard: usize, t: SimTime, ev: ToyEv, out: &mut Outbox<ToyEv, ToyIntent>) {
        let mut st = self.state[shard].lock().unwrap();
        *st = mix(*st ^ ev.id ^ t.as_ps());
        let h = *st;
        drop(st);
        if ev.gen == 0 {
            return;
        }
        // Same-shard child at a delta that straddles the horizon: 0 (a
        // `(time, seq)` tie with the parent's window), inside the window,
        // exactly at the horizon, and past it.
        let deltas = [0, L / 2, L, L + 7];
        if h & 1 != 0 {
            let d = deltas[(h >> 1) as usize % 4];
            out.local(
                SimTime::from_ps(t.as_ps() + d),
                ToyEv {
                    shard,
                    id: mix(h ^ 0xAB),
                    gen: ev.gen - 1,
                },
            );
        }
        if h & 4 != 0 {
            let dst = (h >> 3) as usize % self.shards;
            // `t + L` is the earliest legal arrival (== the horizon when
            // `t` opened the window); the violating driver undercuts it.
            let d = if self.violate_lookahead {
                L / 2
            } else {
                L + deltas[(h >> 5) as usize % 4]
            };
            out.send(ToyIntent {
                dst,
                at: SimTime::from_ps(t.as_ps() + d),
                id: mix(h ^ 0xCD),
                gen: ev.gen - 1,
            });
        }
    }

    fn commit(&mut self, t: SimTime, i: ToyIntent) {
        if let Some(h) = self.horizon {
            assert!(
                i.at >= h,
                "lookahead violation: arrival {:?} inside the window horizon {:?}",
                i.at,
                h
            );
        }
        self.commits.push((t.as_ps(), i.dst, i.id));
        self.q.schedule_at(
            i.at,
            ToyEv {
                shard: i.dst,
                id: i.id,
                gen: i.gen,
            },
        );
    }

    fn window_begin(&mut self, horizon: SimTime) {
        self.horizon = Some(horizon);
    }
    fn replayed(&mut self, shard: usize, t: SimTime) {
        self.order.push((t.as_ps(), shard));
    }
}

type Seed = (u64, usize, u8, u64);

/// `(replay order, commit log, per-shard hash chains, next seq)`.
type Fingerprint = (Vec<(u64, usize)>, Vec<(u64, usize, u64)>, Vec<u64>, u64);

fn run_toy(seeds: &[Seed], shards: usize, workers: Option<usize>) -> Fingerprint {
    let mut toy = Toy::new(shards);
    for &(t, s, g, id) in seeds {
        toy.q.schedule_at(
            SimTime::from_ps(t),
            ToyEv {
                shard: s % shards,
                id,
                gen: g % 3,
            },
        );
    }
    match workers {
        None => run_serial(&mut toy),
        Some(w) => Executor::new(w, SimTime::from_ps(L)).run(&mut toy),
    }
    toy.fingerprint()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The heart of the battery: arbitrary schedules, every worker count.
    /// Times are drawn from a range a few lookaheads wide so runs span
    /// several windows and collide on exact timestamps (seq ties).
    #[test]
    fn executor_matches_serial(
        seeds in collection::vec((0u64..4 * L, 0usize..4, 0u8..3, any::<u64>()), 1..32),
        workers in 1usize..=3,
    ) {
        let serial = run_toy(&seeds, 4, None);
        let parallel = run_toy(&seeds, 4, Some(workers));
        prop_assert_eq!(serial, parallel);
    }

    /// Degenerate sharding: everything on one shard (pure lane-heap
    /// ordering) and shards outnumbering events.
    #[test]
    fn executor_matches_serial_single_shard(
        seeds in collection::vec((0u64..3 * L, 0usize..1, 0u8..3, any::<u64>()), 1..16),
    ) {
        let serial = run_toy(&seeds, 1, None);
        let parallel = run_toy(&seeds, 1, Some(2));
        prop_assert_eq!(serial, parallel);
    }
}

/// All seeds at one timestamp across every shard: the window is nothing
/// but `(time, seq)` ties, so the merge order is decided purely by
/// sequence numbers — real entries first (pre-window allocation), then
/// provisional ones in serial allocation order.
#[test]
fn all_ties_resolve_in_seq_order() {
    let seeds: Vec<Seed> = (0..12)
        .map(|i| (500, i as usize % 4, 2, 0x1234 + i))
        .collect();
    let serial = run_toy(&seeds, 4, None);
    for workers in [1, 2, 3, 4] {
        assert_eq!(
            run_toy(&seeds, 4, Some(workers)),
            serial,
            "workers = {workers}"
        );
    }
}

/// A driver that undercuts its declared lookahead must die loudly inside
/// the window (the same check `World::sched_arrival` applies), not
/// silently corrupt the order.
#[test]
#[should_panic(expected = "lookahead violation")]
fn undercut_lookahead_is_detected() {
    let mut toy = Toy::new(2);
    toy.violate_lookahead = true;
    // `gen > 0` guarantees dispatches emit; ids chosen so at least one
    // send fires in the first window (h & 4 is data-dependent, so seed
    // several).
    for id in 0..16u64 {
        toy.q.schedule_at(
            SimTime::from_ps(0),
            ToyEv {
                shard: (id % 2) as usize,
                id,
                gen: 2,
            },
        );
    }
    Executor::new(2, SimTime::from_ps(L)).run(&mut toy);
}
