//! Property tests of the deterministic event queue against a sorted
//! reference, and determinism of the SplitMix64 stream.

use cni_sim::{EventQueue, SimTime, SplitMix64};
use proptest::prelude::*;

proptest! {
    #[test]
    fn queue_pops_stable_sorted(times in proptest::collection::vec(0u64..1000, 0..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule_at(SimTime::from_ns(t), i);
        }
        // Reference: stable sort by time.
        let mut expect: Vec<(u64, usize)> =
            times.iter().enumerate().map(|(i, &t)| (t, i)).collect();
        expect.sort_by_key(|&(t, _)| t);
        let mut got = Vec::new();
        while let Some((t, i)) = q.pop() {
            got.push((t.as_ns(), i));
        }
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn schedule_after_accumulates(delays in proptest::collection::vec(1u64..100, 1..50)) {
        let mut q = EventQueue::new();
        // Chain of relative events: each scheduled when the previous pops.
        q.schedule_after(SimTime::from_ns(delays[0]), 0usize);
        let mut idx = 0;
        let mut expect = 0u64;
        while let Some((t, i)) = q.pop() {
            expect += delays[idx];
            prop_assert_eq!(t.as_ns(), expect);
            prop_assert_eq!(i, idx);
            idx += 1;
            if idx < delays.len() {
                q.schedule_after(SimTime::from_ns(delays[idx]), idx);
            }
        }
        prop_assert_eq!(idx, delays.len());
    }

    #[test]
    fn splitmix_streams_equal_iff_seeds_equal(a in any::<u64>(), b in any::<u64>()) {
        let mut ra = SplitMix64::new(a);
        let mut rb = SplitMix64::new(b);
        let va: Vec<u64> = (0..8).map(|_| ra.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| rb.next_u64()).collect();
        if a == b {
            prop_assert_eq!(va, vb);
        } else {
            prop_assert_ne!(va, vb);
        }
    }
}
