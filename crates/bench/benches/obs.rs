//! Tracing-overhead microbenchmark for the causal span instrumentation
//! (`cni-obs`).
//!
//! Measures the canonical Jacobi-8 run three ways — spans disabled (the
//! default every figure run uses), spans + utilization sampler enabled,
//! and the offline analysis pass over the drained trace — and writes
//! `BENCH_obs.json` at the repo root. The contract: the disabled path is
//! a single enum branch (overhead in the noise), and the enabled path
//! stays within 10% of the disabled wall clock. `-- --quick` shrinks the
//! repetition counts for CI smoke runs.

use cni::{Config, SimTime, TraceSink};
use cni_apps::experiments::{run_app, run_app_traced, App};
use cni_obs::{render_analysis, SpanTree};
use serde::Serialize;
use std::hint::black_box;
use std::io::Write;

/// Nanoseconds per end-to-end run (or analysis pass) for each probe.
#[derive(Clone, Copy, Debug, Serialize)]
struct Timings {
    /// Jacobi-8 with the trace sink disabled (the figure-run default).
    jacobi8_off_ns: f64,
    /// Jacobi-8 with span tracing and the 100 µs utilization sampler on.
    jacobi8_obs_ns: f64,
    /// Building the span tree + rendering the analysis of that trace.
    analyze_ns: f64,
}

#[derive(Serialize)]
struct BenchReport {
    current: Timings,
    /// Enabled-path overhead over the disabled path, in percent.
    obs_overhead_pct: f64,
    /// The acceptance ceiling the ISSUE sets for the enabled path.
    budget_pct: f64,
}

/// Median-of-runs timer: `reps` timed samples of `iters` calls each.
fn measure<F: FnMut()>(iters: u64, reps: usize, mut f: F) -> f64 {
    for _ in 0..iters.min(2) {
        f();
    }
    let mut samples = Vec::with_capacity(reps);
    for _ in 0..reps {
        #[allow(clippy::disallowed_methods)]
        let t = std::time::Instant::now();
        for _ in 0..iters {
            f();
        }
        samples.push(t.elapsed().as_nanos() as f64 / iters as f64);
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick" || a == "quick");
    let reps = if quick { 3 } else { 9 };
    let cfg = Config::paper_default();
    let app = App::Jacobi { n: 48, iters: 6 };

    let jacobi8_off_ns = measure(1, reps, || {
        black_box(run_app(cfg, app));
    });

    let jacobi8_obs_ns = measure(1, reps, || {
        let sink = TraceSink::ring(1 << 20);
        black_box(run_app_traced(
            cfg,
            app,
            sink.clone(),
            Some(SimTime::from_us(100)),
        ));
        black_box(sink.drain());
    });

    let sink = TraceSink::ring(1 << 20);
    run_app_traced(cfg, app, sink.clone(), Some(SimTime::from_us(100)));
    let records = sink.drain();
    let analyze_ns = measure(if quick { 2 } else { 8 }, reps, || {
        let tree = SpanTree::build(black_box(&records));
        black_box(tree.closed);
        black_box(render_analysis(&records));
    });

    let current = Timings {
        jacobi8_off_ns,
        jacobi8_obs_ns,
        analyze_ns,
    };
    let obs_overhead_pct = (jacobi8_obs_ns - jacobi8_off_ns) / jacobi8_off_ns * 100.0;
    println!(
        "{:<22} {:>14} \n{:<22} {:>14.1}\n{:<22} {:>14.1}\n{:<22} {:>14.1}",
        "obs probe",
        "ns/run",
        "jacobi8 trace off",
        jacobi8_off_ns,
        "jacobi8 trace on",
        jacobi8_obs_ns,
        "analyze trace",
        analyze_ns,
    );
    println!("span tracing overhead : {obs_overhead_pct:.2}% (budget 10%)");

    let report = BenchReport {
        current,
        obs_overhead_pct,
        budget_pct: 10.0,
    };
    let json = serde_json::to_string_pretty(&report).expect("bench report serializes");
    // Cargo runs bench binaries with CWD = the package dir; anchor the
    // report at the workspace root so CI can pick it up from one place.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_obs.json");
    let mut f = std::fs::File::create(path).expect("create BENCH_obs.json");
    writeln!(f, "{json}").expect("write BENCH_obs.json");
    println!("wrote BENCH_obs.json");
}
