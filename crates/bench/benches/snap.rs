//! Checkpoint-overhead microbenchmark for the snapshot/restore path
//! (`cni-snap` + `cni_apps::checkpoint`).
//!
//! Measures the canonical Jacobi-8 run three ways — no checkpointing
//! (the default every figure run uses), checkpointing every 2500 events
//! (>= 4 crash-safe snapshots per run, each sealed and atomically
//! renamed to disk), and resuming the run from its newest mid-run
//! snapshot — and writes `BENCH_snap.json` at the repo root. The
//! contract: the checkpointed run stays within 10% of the plain wall
//! clock. `-- --quick` shrinks the repetition counts for CI smoke runs.

use cni::Config;
use cni_apps::checkpoint::{newest_snapshot, read_snapshot, run_app_checkpointed};
use cni_apps::experiments::{run_app, App};
use serde::Serialize;
use std::hint::black_box;
use std::io::Write;

/// Nanoseconds per end-to-end run (or restore) for each probe.
#[derive(Clone, Copy, Debug, Serialize)]
struct Timings {
    /// Jacobi-8 with checkpointing disabled (the figure-run default).
    jacobi8_plain_ns: f64,
    /// Jacobi-8 snapshotting every 2500 events (journal + sealed writes).
    jacobi8_ck_ns: f64,
    /// Reading the newest snapshot and replaying the run to completion.
    resume_ns: f64,
}

#[derive(Serialize)]
struct BenchReport {
    current: Timings,
    /// Snapshots sealed to disk per checkpointed run.
    snapshots_per_run: usize,
    /// Checkpointed-run overhead over the plain run, in percent.
    ck_overhead_pct: f64,
    /// The acceptance ceiling the ISSUE sets for the checkpointed path.
    budget_pct: f64,
}

/// Median-of-runs timer: `reps` timed samples of `iters` calls each.
fn measure<F: FnMut()>(iters: u64, reps: usize, mut f: F) -> f64 {
    for _ in 0..iters.min(2) {
        f();
    }
    let mut samples = Vec::with_capacity(reps);
    for _ in 0..reps {
        #[allow(clippy::disallowed_methods)]
        let t = std::time::Instant::now();
        for _ in 0..iters {
            f();
        }
        samples.push(t.elapsed().as_nanos() as f64 / iters as f64);
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick" || a == "quick");
    let reps = if quick { 3 } else { 9 };
    let cfg = Config::paper_default();
    let app = App::Jacobi { n: 512, iters: 8 };
    let every = 2500;
    let dir = std::path::Path::new(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../target/bench-snap-ck"
    ));

    let jacobi8_plain_ns = measure(1, reps, || {
        black_box(run_app(cfg, app));
    });

    let mut snapshots_per_run = 0;
    let jacobi8_ck_ns = measure(1, reps, || {
        let _ = std::fs::remove_dir_all(dir);
        let run = run_app_checkpointed(cfg, app, every, dir).expect("checkpointed run");
        snapshots_per_run = run.snapshots.len();
        black_box(run.report);
    });
    assert!(
        snapshots_per_run >= 4,
        "expected >= 4 snapshots per run, got {snapshots_per_run}"
    );

    let newest = newest_snapshot(dir).expect("a snapshot survives the timed runs");
    let resume_ns = measure(1, reps, || {
        let snap = read_snapshot(black_box(&newest)).expect("snapshot reads back");
        black_box(snap.resume().expect("snapshot resumes"));
    });

    let current = Timings {
        jacobi8_plain_ns,
        jacobi8_ck_ns,
        resume_ns,
    };
    let ck_overhead_pct = (jacobi8_ck_ns - jacobi8_plain_ns) / jacobi8_plain_ns * 100.0;
    println!(
        "{:<22} {:>14}\n{:<22} {:>14.1}\n{:<22} {:>14.1}\n{:<22} {:>14.1}",
        "snap probe",
        "ns/run",
        "jacobi8 plain",
        jacobi8_plain_ns,
        "jacobi8 checkpointed",
        jacobi8_ck_ns,
        "resume from newest",
        resume_ns,
    );
    println!(
        "checkpoint overhead   : {ck_overhead_pct:.2}% at {snapshots_per_run} snapshots/run (budget 10%)"
    );

    let report = BenchReport {
        current,
        snapshots_per_run,
        ck_overhead_pct,
        budget_pct: 10.0,
    };
    let json = serde_json::to_string_pretty(&report).expect("bench report serializes");
    // Cargo runs bench binaries with CWD = the package dir; anchor the
    // report at the workspace root so CI can pick it up from one place.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_snap.json");
    let mut f = std::fs::File::create(path).expect("create BENCH_snap.json");
    writeln!(f, "{json}").expect("write BENCH_snap.json");
    println!("wrote BENCH_snap.json");
}
