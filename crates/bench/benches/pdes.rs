//! Serial-vs-parallel microbench for the conservative-lookahead event
//! executor (cni-pdes, DESIGN.md §4.11).
//!
//! Runs the 256-host fat-tree configurations at engine worker counts
//! {1, 2, 4, 8}, checks that every parallel report is **byte-identical**
//! to the serial one, and writes `BENCH_pdes.json` (repo root when run
//! via `cargo bench -p cni-bench --bench pdes`) with the measured walls
//! and speedups. `-- --quick` shrinks the workload and the worker grid
//! for CI smoke runs.
//!
//! The numbers are honest wall-clock measurements on whatever machine
//! runs the bench: the report records `host_cores`, and the achievable
//! speedup is capped by it — on a single-core host the parallel engine
//! can only demonstrate identity plus its (small) coordination overhead,
//! not a speedup. Identity, not speed, is the regression gate here; the
//! speedup column is reporting, so a laptop run and a 32-core CI run
//! both produce a valid artifact.

use cni::{Config, RunReport};
use cni_apps::experiments::{run_app, App};
use serde::Serialize;
use std::hint::black_box;
use std::io::Write;

/// One measured point: a worker count on one configuration.
#[derive(Serialize)]
struct Point {
    workers: usize,
    /// Median host wall-clock of the run, in seconds.
    wall_s: f64,
    /// Serial median wall divided by this wall.
    speedup: f64,
    /// The run's report is byte-identical (as JSON) to the serial run's.
    identical: bool,
}

#[derive(Serialize)]
struct ConfigRows {
    label: String,
    hosts: usize,
    procs: usize,
    points: Vec<Point>,
}

#[derive(Serialize)]
struct BenchReport {
    /// Physical parallelism of the machine that produced the numbers —
    /// the hard ceiling on any measured speedup.
    host_cores: usize,
    quick: bool,
    configs: Vec<ConfigRows>,
}

/// Median wall seconds over `reps` runs, plus one report for identity.
fn measure(cfg: Config, app: App, reps: usize) -> (f64, RunReport) {
    let mut samples = Vec::with_capacity(reps);
    let mut report = None;
    for _ in 0..reps {
        #[allow(clippy::disallowed_methods)]
        let t = std::time::Instant::now();
        let r = black_box(run_app(cfg, app));
        samples.push(t.elapsed().as_secs_f64());
        report = Some(r);
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    (samples[samples.len() / 2], report.expect("reps >= 1"))
}

fn bench_config(label: &str, cfg: Config, app: App, workers: &[usize], reps: usize) -> ConfigRows {
    let (serial_wall, serial_report) = measure(cfg.with_engine_workers(1), app, reps);
    let serial_json = serde_json::to_string(&serial_report).expect("report serializes");
    let mut points = vec![Point {
        workers: 1,
        wall_s: serial_wall,
        speedup: 1.0,
        identical: true,
    }];
    for &w in workers.iter().filter(|&&w| w > 1) {
        let (wall, report) = measure(cfg.with_engine_workers(w), app, reps);
        let json = serde_json::to_string(&report).expect("report serializes");
        let identical = json == serial_json;
        assert!(
            identical,
            "{label}: report at {w} workers diverged from serial"
        );
        points.push(Point {
            workers: w,
            wall_s: wall,
            speedup: serial_wall / wall,
            identical,
        });
    }
    ConfigRows {
        label: label.to_string(),
        hosts: cfg.atm.hosts(),
        procs: cfg.procs,
        points,
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick" || a == "quick");
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let workers: &[usize] = if quick { &[1, 4] } else { &[1, 2, 4, 8] };
    let reps = if quick { 1 } else { 3 };
    let iters = if quick { 4 } else { 25 };

    // The 256-host 2-level fat-tree (16 leaves x 16 down x 16 uplinks),
    // fully populated — the topology the tentpole targets. One config
    // per barrier flavour: AIH dispatches vs NIC-resident collectives.
    let ft = Config::paper_default()
        .with_fat_tree(16, 16, 16)
        .with_procs(256);
    let app = App::Jacobi { n: 256, iters };
    let configs = vec![
        bench_config("jacobi256-ft-aih", ft, app, workers, reps),
        bench_config(
            "jacobi256-ft-collectives",
            ft.with_collectives(),
            app,
            workers,
            reps,
        ),
    ];

    println!(
        "{:<26} {:>8} {:>12} {:>9} {:>10}",
        "config", "workers", "wall(s)", "speedup", "identical"
    );
    for c in &configs {
        for p in &c.points {
            println!(
                "{:<26} {:>8} {:>12.3} {:>8.2}x {:>10}",
                c.label, p.workers, p.wall_s, p.speedup, p.identical
            );
        }
    }
    println!("host cores: {host_cores} (speedup ceiling)");

    let report = BenchReport {
        host_cores,
        quick,
        configs,
    };
    let json = serde_json::to_string_pretty(&report).expect("bench report serializes");
    // Cargo runs bench binaries with CWD = the package dir; anchor the
    // report at the workspace root so CI can pick it up from one place.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pdes.json");
    let mut f = std::fs::File::create(path).expect("create BENCH_pdes.json");
    writeln!(f, "{json}").expect("write BENCH_pdes.json");
    println!("wrote BENCH_pdes.json");
}
