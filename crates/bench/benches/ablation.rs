//! Ablation study: the CNI with each mechanism removed, on a medium
//! workload. Not a paper figure — the decomposition DESIGN.md §6 calls
//! for ("which mechanism buys what").
//!
//! Run: `cargo bench -p cni-bench --bench ablation`

use cni::Config;
use cni_apps::experiments::{ablation, App};

fn tree_barrier_study() {
    use cni_apps::experiments::run_app;
    use cni_batch::Pool;
    println!("== extension: combining-tree barrier vs centralised manager ==");
    println!(
        "{:>8} {:>14} {:>14} {:>10}",
        "procs", "central(ms)", "tree(ms)", "tree/ctrl"
    );
    let app = App::Jacobi { n: 128, iters: 25 }; // barrier-bound at scale
    const PROCS: [usize; 3] = [8, 16, 32];
    // One batch job per (procs, barrier) pair; the pool work-steals
    // across them and results come back in sweep order.
    let mut cfgs: Vec<Config> = Vec::new();
    for procs in PROCS {
        cfgs.push(Config::paper_default().with_procs(procs));
        cfgs.push(
            Config::paper_default()
                .with_procs(procs)
                .with_tree_barrier(),
        );
    }
    let walls = Pool::with_default_workers()
        .quiet()
        .map(cfgs, |_, &cfg| run_app(cfg, app).wall.as_ms_f64());
    let mut rows = Vec::new();
    for (k, procs) in PROCS.into_iter().enumerate() {
        let (central, tree) = (walls[2 * k], walls[2 * k + 1]);
        println!(
            "{procs:>8} {central:>14.2} {tree:>14.2} {:>10.2}",
            tree / central
        );
        rows.push((procs, central, tree));
    }
    cni_bench::save_json("tree_barrier", &rows);
    println!();
}

fn main() {
    tree_barrier_study();
    for (name, app, procs) in [
        ("Jacobi 256x256", App::Jacobi { n: 256, iters: 25 }, 8),
        (
            "Water 216",
            App::Water {
                molecules: 216,
                steps: 2,
            },
            8,
        ),
    ] {
        println!("== ablation: {name}, {procs} procs ==");
        println!(
            "{:>28} {:>10} {:>10} {:>10} {:>10}",
            "variant", "wall(ms)", "slowdown", "hit(%)", "interrupts"
        );
        let rows = ablation(Config::paper_default(), app, procs);
        for r in &rows {
            println!(
                "{:>28} {:>10.2} {:>10.2} {:>10.1} {:>10}",
                r.variant, r.wall_ms, r.slowdown_vs_cni, r.hit_ratio_pct, r.interrupts
            );
        }
        cni_bench::save_json(&format!("ablation-{}", name.replace(' ', "-")), &rows);
        println!();
    }
}
