//! Criterion micro-benchmarks of the substrate data structures: the hot
//! paths a real CNI board and DSM implementation would care about.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use cni_atm::{AtmConfig, Fabric, Reassembler, Segmenter};
use cni_dsm::{Diff, NodeSpace, PageId};
use cni_nic::hostcache::HostCache;
use cni_nic::msgcache::MessageCache;
use cni_nic::queues::{ChannelQueues, Descriptor};
use cni_pathfinder::{Classifier, FieldTest, Pattern};
use cni_sim::SimTime;

fn bench_pathfinder(c: &mut Criterion) {
    let mut g = c.benchmark_group("pathfinder");
    let mut cls: Classifier<u32> = Classifier::new();
    // 32 connections on two header fields plus protocol-kind patterns.
    for k in 0..32u16 {
        cls.install(
            Pattern::new(vec![FieldTest::byte(0, 1), FieldTest::u16(2, k)]),
            k as u32,
        );
    }
    for kind in 0xD0u8..=0xD8 {
        cls.install(Pattern::new(vec![FieldTest::byte(0, kind)]), kind as u32);
    }
    let pkt = [1u8, 0, 0, 17, 0, 0, 0, 0];
    g.bench_function("classify_match", |b| {
        b.iter(|| cls.classify(black_box(&pkt)))
    });
    let miss = [9u8, 0, 0, 17, 0, 0, 0, 0];
    g.bench_function("classify_miss", |b| {
        b.iter(|| cls.classify(black_box(&miss)))
    });
    g.bench_function("flow_binding_lookup", |b| {
        cls.bind_flow(7, 3);
        b.iter(|| cls.lookup_flow(black_box(7)))
    });
    g.finish();
}

fn bench_msgcache(c: &mut Criterion) {
    let mut g = c.benchmark_group("message_cache");
    g.bench_function("lookup_hit", |b| {
        let mut mc = MessageCache::new(16, 256);
        mc.insert(5);
        b.iter(|| mc.lookup_tx(black_box(5)))
    });
    g.bench_function("insert_with_clock_eviction", |b| {
        let mut mc = MessageCache::new(16, 256);
        let mut page = 0u64;
        b.iter(|| {
            page += 1;
            mc.insert(black_box(page))
        })
    });
    g.bench_function("snoop_write", |b| {
        let mut mc = MessageCache::new(16, 256);
        mc.insert(3);
        b.iter(|| mc.snoop_write(black_box(3)))
    });
    g.finish();
}

fn bench_aal5(c: &mut Criterion) {
    let mut g = c.benchmark_group("aal5");
    let seg = Segmenter::standard();
    let page = vec![0xA5u8; 2048];
    g.bench_function("segment_2k_page", |b| {
        b.iter(|| seg.segment(9, black_box(&page)))
    });
    let cells = seg.segment(9, &page);
    g.bench_function("reassemble_2k_page", |b| {
        b.iter_batched(
            Reassembler::new,
            |mut rx| {
                let mut out = None;
                for cell in &cells {
                    if let Some(r) = rx.push(cell) {
                        out = Some(r);
                    }
                }
                out.unwrap().unwrap()
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_fabric(c: &mut Criterion) {
    let mut g = c.benchmark_group("fabric");
    g.bench_function("send_2k_pdu_timing", |b| {
        let mut f = Fabric::new(AtmConfig::default());
        let mut t = SimTime::ZERO;
        b.iter(|| {
            t += SimTime::from_us(100);
            f.send_pdu(black_box(t), 0, 7, 2048, SimTime::from_ns(242))
        })
    });
    g.finish();
}

fn bench_diffs(c: &mut Criterion) {
    let mut g = c.benchmark_group("dsm_diff");
    let ns = NodeSpace::new(2048, 32);
    let h = ns.page(PageId(0));
    for i in 0..256 {
        h.frame.store(i, i as u64);
    }
    let twin = h.frame.snapshot();
    // Dirty a quarter of the page.
    for i in (0..256).step_by(4) {
        h.frame.store(i, i as u64 + 1_000_000);
    }
    g.bench_function("create_quarter_dirty", |b| {
        b.iter(|| Diff::create(black_box(&twin), &h.frame))
    });
    let d = Diff::create(&twin, &h.frame);
    let target = ns.page(PageId(1));
    g.bench_function("apply_quarter_dirty", |b| b.iter(|| d.apply(&target.frame)));
    g.bench_function("twin_snapshot", |b| b.iter(|| h.frame.snapshot()));
    g.finish();
}

fn bench_queues(c: &mut Criterion) {
    let mut g = c.benchmark_group("adc_queues");
    let mut q = ChannelQueues::new(64);
    q.register_region(0x1000, 1 << 20);
    let d = Descriptor {
        vaddr: 0x2000,
        len: 2048,
        cacheable: true,
    };
    g.bench_function("enqueue_dequeue_transmit", |b| {
        b.iter(|| {
            // A Full ring is counted backpressure, not a crash: drain one
            // descriptor and retry, as the application would.
            if q.enqueue_transmit(black_box(d)).is_err() {
                q.dequeue_transmit();
                let _ = q.enqueue_transmit(black_box(d));
            }
            q.dequeue_transmit()
        })
    });
    g.finish();
}

fn bench_hostcache(c: &mut Criterion) {
    let mut g = c.benchmark_group("host_cache");
    g.bench_function("access_stream", |b| {
        let mut hc = HostCache::paper_default();
        let mut addr = 0u64;
        b.iter(|| {
            addr = (addr + 64) & 0xF_FFFF;
            hc.access(black_box(addr), addr.is_multiple_of(3))
        })
    });
    g.bench_function("flush_2k_page", |b| {
        let mut hc = HostCache::paper_default();
        b.iter(|| {
            for line in 0..64u64 {
                hc.access(0x8000 + line * 32, true);
            }
            hc.flush_range(0x8000, 2048)
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_pathfinder,
    bench_msgcache,
    bench_aal5,
    bench_fabric,
    bench_diffs,
    bench_queues,
    bench_hostcache
);
criterion_main!(benches);
