//! Regenerate every table and figure of the paper's evaluation.
//!
//! Run all: `cargo bench --bench figures`
//! Run some: `cargo bench --bench figures -- fig04 table5`

fn main() {
    // Cargo's bench runner may pass `--bench`; everything else is a filter.
    let filters: Vec<String> = std::env::args()
        .skip(1)
        .filter(|a| !a.starts_with('-'))
        .collect();
    cni_bench::run_filtered(&filters);
}
