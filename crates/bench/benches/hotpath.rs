//! Hot-path regression microbenchmarks for the zero-copy PDU path and the
//! 4-ary event queue (ISSUE 5).
//!
//! Measures the four structures every experiment leans on — AAL5
//! segmentation, reassembly, event-queue churn, and one end-to-end Jacobi-8
//! run — and writes `BENCH_hotpath.json` (repo root when run via
//! `cargo bench -p cni-bench --bench hotpath`) comparing against the
//! pre-overhaul baseline captured before the `PduBuf`/4-ary-heap rewrite.
//! `-- --quick` shrinks the repetition counts for CI smoke runs.
//!
//! This is a custom harness rather than criterion: the regression gate
//! needs structured JSON output (baseline, current, speedup per probe),
//! not just printed ns/iter lines.

use cni::Config;
use cni_apps::experiments::{run_app, App};
use cni_atm::{Reassembler, Segmenter};
use cni_sim::{EventQueue, SimTime};
use serde::Serialize;
use std::hint::black_box;
use std::io::Write;

/// Nanoseconds per operation for each probe.
#[derive(Clone, Copy, Debug, Serialize)]
struct Timings {
    /// Segment one 2 KB page into 43 standard cells.
    segment_2k_ns: f64,
    /// Reassemble those 43 cells back into the PDU (CRC checked).
    reassemble_2k_ns: f64,
    /// Full segment→reassemble round trip of a 2 KB page.
    roundtrip_2k_ns: f64,
    /// One pop+schedule churn step on a 4096-deep event queue.
    queue_churn_ns: f64,
    /// One end-to-end Jacobi run on 8 processors (n=48, 6 iterations).
    jacobi8_e2e_ns: f64,
}

/// Pre-overhaul numbers, measured on the commit immediately before the
/// zero-copy/4-ary-heap rewrite with this same harness (release profile,
/// same repetition counts). Units: ns/op.
const BASELINE: Timings = Timings {
    segment_2k_ns: 7041.0,
    reassemble_2k_ns: 6804.0,
    roundtrip_2k_ns: 14147.0,
    queue_churn_ns: 83.0,
    jacobi8_e2e_ns: 4_496_000.0,
};

#[derive(Serialize)]
struct Speedups {
    segment_2k: f64,
    reassemble_2k: f64,
    roundtrip_2k: f64,
    queue_churn: f64,
    jacobi8_e2e: f64,
}

#[derive(Serialize)]
struct BenchReport {
    baseline: Timings,
    current: Timings,
    speedup: Speedups,
}

/// Median-of-runs timer: `reps` timed samples of `iters` calls each.
fn measure<F: FnMut()>(iters: u64, reps: usize, mut f: F) -> f64 {
    // Warm-up pass (fills pools, caches, lazy tables).
    for _ in 0..iters.min(64) {
        f();
    }
    let mut samples = Vec::with_capacity(reps);
    for _ in 0..reps {
        #[allow(clippy::disallowed_methods)]
        let t = std::time::Instant::now();
        for _ in 0..iters {
            f();
        }
        samples.push(t.elapsed().as_nanos() as f64 / iters as f64);
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

fn bench_all(quick: bool) -> Timings {
    let scale = if quick { 8 } else { 1 };
    let seg = Segmenter::standard();
    let page = vec![0xA5u8; 2048];

    let segment_2k_ns = measure(2048 / scale, 9, || {
        black_box(seg.segment(9, black_box(&page)));
    });

    let cells = seg.segment(9, &page);
    let mut rx = Reassembler::new();
    let reassemble_2k_ns = measure(2048 / scale, 9, || {
        let mut out = None;
        for cell in &cells {
            if let Some(r) = rx.push(cell) {
                out = Some(r);
            }
        }
        black_box(out.expect("EOP present").expect("valid PDU"));
    });

    let mut rx = Reassembler::new();
    let roundtrip_2k_ns = measure(1024 / scale, 9, || {
        let cells = seg.segment(9, black_box(&page));
        let mut out = None;
        for cell in &cells {
            if let Some(r) = rx.push(cell) {
                out = Some(r);
            }
        }
        black_box(out.expect("EOP present").expect("valid PDU"));
    });

    // Event-queue churn: steady state of a 4096-deep queue, one pop + one
    // reschedule per step with deterministically scattered deltas.
    let mut q: EventQueue<u64> = EventQueue::new();
    let mut rng: u64 = 0x9E37_79B9_7F4A_7C15;
    let mut delta = move || {
        rng = rng
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (rng >> 33) % 10_000 + 1
    };
    for i in 0..4096u64 {
        let d = delta();
        q.schedule_after(SimTime::from_ns(d), i);
    }
    let queue_churn_ns = measure(65_536 / scale, 9, || {
        let (_, ev) = q.pop().expect("queue stays full");
        let d = delta();
        q.schedule_after(SimTime::from_ns(d), black_box(ev));
    });

    let jacobi8_e2e_ns = measure(1, if quick { 3 } else { 7 }, || {
        black_box(run_app(
            Config::paper_default(),
            App::Jacobi { n: 48, iters: 6 },
        ));
    });

    Timings {
        segment_2k_ns,
        reassemble_2k_ns,
        roundtrip_2k_ns,
        queue_churn_ns,
        jacobi8_e2e_ns,
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick" || a == "quick");
    let current = bench_all(quick);
    let ratio = |base: f64, now: f64| if now > 0.0 { base / now } else { 0.0 };
    let speedup = Speedups {
        segment_2k: ratio(BASELINE.segment_2k_ns, current.segment_2k_ns),
        reassemble_2k: ratio(BASELINE.reassemble_2k_ns, current.reassemble_2k_ns),
        roundtrip_2k: ratio(BASELINE.roundtrip_2k_ns, current.roundtrip_2k_ns),
        queue_churn: ratio(BASELINE.queue_churn_ns, current.queue_churn_ns),
        jacobi8_e2e: ratio(BASELINE.jacobi8_e2e_ns, current.jacobi8_e2e_ns),
    };

    let row = |name: &str, base: f64, now: f64| {
        println!(
            "{name:<22} {base:>14.1} {now:>14.1} {:>9.2}x",
            ratio(base, now)
        );
    };
    println!(
        "{:<22} {:>14} {:>14} {:>10}",
        "hotpath probe", "baseline ns", "current ns", "speedup"
    );
    row("segment_2k", BASELINE.segment_2k_ns, current.segment_2k_ns);
    row(
        "reassemble_2k",
        BASELINE.reassemble_2k_ns,
        current.reassemble_2k_ns,
    );
    row(
        "roundtrip_2k",
        BASELINE.roundtrip_2k_ns,
        current.roundtrip_2k_ns,
    );
    row(
        "queue_churn",
        BASELINE.queue_churn_ns,
        current.queue_churn_ns,
    );
    row(
        "jacobi8_e2e",
        BASELINE.jacobi8_e2e_ns,
        current.jacobi8_e2e_ns,
    );

    let report = BenchReport {
        baseline: BASELINE,
        current,
        speedup,
    };
    let json = serde_json::to_string_pretty(&report).expect("bench report serializes");
    // Cargo runs bench binaries with CWD = the package dir; anchor the
    // report at the workspace root so CI can pick it up from one place.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_hotpath.json");
    let mut f = std::fs::File::create(path).expect("create BENCH_hotpath.json");
    writeln!(f, "{json}").expect("write BENCH_hotpath.json");
    println!("wrote BENCH_hotpath.json");
}
