//! Wall-time microbenchmark for the `cni-lint` v2 analysis engine.
//!
//! The lint runs on every CI push and (ideally) on every save in an
//! editor hook, so its whole-workspace wall time is a first-class
//! budget: parse + call graph + all rules over the full first-party
//! source set must finish in <= 3 s. Measures the end-to-end workspace
//! scan (I/O included, like CI pays it) and the in-memory analysis
//! alone (what an editor with a warm file cache pays), and writes
//! `BENCH_lint.json` at the repo root. `-- --quick` shrinks the
//! repetition counts for CI smoke runs.

use cni_lint::rules::analyze_sources;
use cni_lint::walk::analyze_workspace;
use serde::Serialize;
use std::hint::black_box;
use std::io::Write;
use std::path::Path;

/// Milliseconds per whole-workspace pass for each probe.
#[derive(Clone, Copy, Debug, Serialize)]
struct Timings {
    /// Full scan: directory walk + file reads + analysis (the CI path).
    workspace_scan_ms: f64,
    /// Analysis only, sources pre-loaded (the warm editor-hook path).
    analyze_ms: f64,
}

#[derive(Serialize)]
struct BenchReport {
    current: Timings,
    /// How many first-party files the timed scan covered.
    files_scanned: usize,
    /// The acceptance ceiling for the full scan, in milliseconds.
    budget_ms: f64,
}

/// Median-of-runs timer: `reps` timed samples of one call each.
fn measure<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    f();
    let mut samples = Vec::with_capacity(reps);
    for _ in 0..reps {
        #[allow(clippy::disallowed_methods)]
        let t = std::time::Instant::now();
        f();
        samples.push(t.elapsed().as_nanos() as f64 / 1e6);
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

/// Collect the same `(rel path, source)` inputs the walker analyzes.
fn load_inputs(root: &Path) -> Vec<(String, String)> {
    fn collect(dir: &Path, root: &Path, out: &mut Vec<(String, String)>) {
        let Ok(entries) = std::fs::read_dir(dir) else {
            return;
        };
        let mut paths: Vec<_> = entries.flatten().map(|e| e.path()).collect();
        paths.sort();
        for p in paths {
            if p.is_dir() {
                collect(&p, root, out);
            } else if p.extension().is_some_and(|x| x == "rs") {
                let rel = p
                    .strip_prefix(root)
                    .unwrap()
                    .to_string_lossy()
                    .replace('\\', "/");
                out.push((rel, std::fs::read_to_string(&p).expect("read source")));
            }
        }
    }
    let mut inputs = Vec::new();
    for e in std::fs::read_dir(root.join("crates"))
        .expect("crates dir")
        .flatten()
    {
        let src = e.path().join("src");
        if src.is_dir() {
            collect(&src, root, &mut inputs);
        }
    }
    inputs.sort();
    inputs
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick" || a == "quick");
    let reps = if quick { 3 } else { 9 };
    let root = Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."));

    let report0 = analyze_workspace(root).expect("workspace scan");
    assert!(
        report0.is_clean(),
        "benchmarking a dirty workspace: fix or waive the findings first"
    );
    let files_scanned = report0.files_scanned;

    let workspace_scan_ms = measure(reps, || {
        black_box(analyze_workspace(root).expect("workspace scan"));
    });

    let inputs = load_inputs(root);
    let analyze_ms = measure(reps, || {
        black_box(analyze_sources(black_box(&inputs)));
    });

    let budget_ms = 3000.0;
    println!(
        "{:<22} {:>12}\n{:<22} {:>12.1}\n{:<22} {:>12.1}",
        "lint probe", "ms/pass", "workspace scan", workspace_scan_ms, "analyze (warm)", analyze_ms,
    );
    println!("lint wall time        : {workspace_scan_ms:.1} ms over {files_scanned} files (budget {budget_ms:.0} ms)");
    assert!(
        workspace_scan_ms <= budget_ms,
        "lint wall time {workspace_scan_ms:.1} ms exceeds the {budget_ms:.0} ms budget"
    );

    let report = BenchReport {
        current: Timings {
            workspace_scan_ms,
            analyze_ms,
        },
        files_scanned,
        budget_ms,
    };
    let json = serde_json::to_string_pretty(&report).expect("bench report serializes");
    // Cargo runs bench binaries with CWD = the package dir; anchor the
    // report at the workspace root so CI can pick it up from one place.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_lint.json");
    let mut f = std::fs::File::create(path).expect("create BENCH_lint.json");
    writeln!(f, "{json}").expect("write BENCH_lint.json");
    println!("wrote BENCH_lint.json");
}
