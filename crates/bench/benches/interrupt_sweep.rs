//! Interrupt-cost sensitivity (extension): the paper's premise is that
//! interrupts are expensive on superscalar, superpipelined CPUs and
//! getting them off the critical path is where the CNI wins. Sweep the
//! interrupt cost and watch the standard interface degrade while the CNI
//! barely notices.
//!
//! Run: `cargo bench -p cni-bench --bench interrupt_sweep`

use cni::Config;
use cni_apps::experiments::{run_app, App};
use cni_batch::Pool;

fn main() {
    let app = App::Jacobi { n: 256, iters: 25 };
    println!("== interrupt-cost sensitivity: Jacobi 256x256, 8 procs ==");
    println!(
        "{:>16} {:>12} {:>12} {:>12}",
        "interrupt(us)", "CNI(ms)", "Std(ms)", "Std/CNI"
    );
    // Both interfaces at every cost point, as one flat work-stealing
    // batch; rows come back in sweep order regardless of completion.
    let mut cfgs: Vec<(u64, Config)> = Vec::new();
    for us in [5u64, 10, 20, 40, 80] {
        let cycles = us * 166; // 166 cycles per microsecond at 166 MHz
        let mut cfg = Config::paper_default().with_procs(8);
        cfg.nic.interrupt_cycles = cycles;
        cfg.nic.interrupt_occupancy_cycles = (cycles / 4).max(400);
        cfgs.push((us, cfg.cni()));
        cfgs.push((us, cfg.standard()));
    }
    let walls = Pool::with_default_workers()
        .quiet()
        .map(cfgs, |_, &(_, cfg)| run_app(cfg, app).wall.as_ms_f64());
    let mut rows = Vec::new();
    for (k, us) in [5u64, 10, 20, 40, 80].into_iter().enumerate() {
        let (cni, std_) = (walls[2 * k], walls[2 * k + 1]);
        println!("{us:>16} {cni:>12.2} {std_:>12.2} {:>12.2}", std_ / cni);
        rows.push((us, cni, std_));
    }
    cni_bench::save_json("interrupt_sweep", &rows);
    println!(
        "\nThe CNI column is exactly flat: its receive path polls and its\n\
         protocol runs on the board, so the host interrupt cost never\n\
         appears on its critical path. The standard interface pays the\n\
         sweep (visibly so once interrupts dominate its per-message cost);\n\
         at Jacobi's message rate most of its deficit is DMA that the\n\
         Message Cache eliminates — see the ablation bench."
    );
}
