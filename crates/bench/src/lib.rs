//! `cni-bench` — regeneration harnesses for every table and figure in the
//! paper's evaluation (§3), plus criterion micro-benchmarks of the
//! substrate data structures.
//!
//! The `figures` bench target (a `harness = false` binary run by
//! `cargo bench`) executes every experiment of the paper in order and
//! prints paper-style rows; it also writes machine-readable JSON records
//! to `target/cni-results/`. Pass a filter substring to run a subset:
//! `cargo bench --bench figures -- fig04 table5`.

#![deny(missing_docs)]

use cni::Config;
use cni_apps::cholesky::CholeskyMatrix;
use cni_apps::experiments::{self, App};
use serde::Serialize;
use std::io::Write as _;
use std::path::PathBuf;

/// Processor counts of the paper's speedup figures.
pub const PROC_SWEEP: [usize; 5] = [2, 4, 8, 16, 32];

/// Where JSON records of the experiment outputs land.
pub fn results_dir() -> PathBuf {
    let dir = PathBuf::from("target/cni-results");
    std::fs::create_dir_all(&dir).ok();
    dir
}

/// Persist an experiment record as JSON next to the printed output.
pub fn save_json<T: Serialize>(name: &str, value: &T) {
    let path = results_dir().join(format!("{name}.json"));
    if let Ok(mut f) = std::fs::File::create(&path) {
        let _ = writeln!(f, "{}", serde_json::to_string_pretty(value).unwrap());
    }
}

/// The paper's three benchmark applications at their paper sizes.
pub fn paper_apps() -> Vec<(&'static str, App)> {
    vec![
        ("jacobi-1024", App::Jacobi { n: 1024, iters: 25 }),
        (
            "water-343",
            App::Water {
                molecules: 343,
                steps: 2,
            },
        ),
        (
            "cholesky-bcsstk14",
            App::Cholesky {
                matrix: CholeskyMatrix::Bcsstk14,
            },
        ),
    ]
}

/// One experiment of the evaluation: id, what it reproduces, and a runner.
pub struct Experiment {
    /// Identifier, e.g. `fig04`.
    pub id: &'static str,
    /// What it reproduces.
    pub title: &'static str,
    /// Execute and print.
    pub run: fn(),
}

fn speedup_figure(id: &str, title: &str, app: App, procs: &[usize]) {
    println!("== {id}: {title} ==");
    let pts = experiments::speedup_curve(Config::paper_default(), app, procs);
    println!(
        "{:>6} {:>12} {:>12} {:>18}",
        "procs", "CNI-speedup", "Std-speedup", "NetCacheHit(%)"
    );
    for p in &pts {
        println!(
            "{:>6} {:>12.2} {:>12.2} {:>18.1}",
            p.procs, p.cni_speedup, p.std_speedup, p.hit_ratio_pct
        );
    }
    save_json(id, &pts);
}

fn page_size_figure(id: &str, title: &str, app: App, sizes: &[usize]) {
    println!("== {id}: {title} ==");
    let pts = experiments::page_size_sweep(Config::paper_default(), app, 8, sizes);
    println!(
        "{:>12} {:>12} {:>12}",
        "page(bytes)", "CNI-speedup", "Std-speedup"
    );
    for p in &pts {
        println!(
            "{:>12} {:>12.2} {:>12.2}",
            p.page_bytes, p.cni_speedup, p.std_speedup
        );
    }
    save_json(id, &pts);
}

fn overhead_figure(id: &str, title: &str, app: App) {
    println!("== {id}: {title} ==");
    let (cni, std_) = experiments::overhead_table(Config::paper_default(), app, 8);
    println!(
        "{:>16} {:>16} {:>16}",
        "Category", "Time-CNI(1e9cyc)", "Time-std(1e9cyc)"
    );
    let rows = [
        ("Synch overhead", cni.synch_overhead, std_.synch_overhead),
        ("Synch delay", cni.synch_delay, std_.synch_delay),
        ("Computation", cni.computation, std_.computation),
        ("Total", cni.total, std_.total),
    ];
    for (name, c, s) in rows {
        println!("{name:>16} {c:>16.4} {s:>16.4}");
    }
    save_json(id, &(cni, std_));
}

/// The full experiment registry, in paper order.
pub fn experiments() -> Vec<Experiment> {
    vec![
        Experiment {
            id: "table1",
            title: "Simulation Parameters",
            run: || {
                println!("== table1: Simulation Parameters ==");
                print!("{}", Config::paper_default().table1());
            },
        },
        Experiment {
            id: "fig02",
            title: "Jacobi 128x128 speedup + hit ratio",
            run: || {
                speedup_figure(
                    "fig02",
                    "Jacobi 128x128",
                    App::Jacobi { n: 128, iters: 25 },
                    &PROC_SWEEP,
                )
            },
        },
        Experiment {
            id: "fig03",
            title: "Jacobi 256x256 speedup + hit ratio",
            run: || {
                speedup_figure(
                    "fig03",
                    "Jacobi 256x256",
                    App::Jacobi { n: 256, iters: 25 },
                    &PROC_SWEEP,
                )
            },
        },
        Experiment {
            id: "fig04",
            title: "Jacobi 1024x1024 speedup + hit ratio",
            run: || {
                speedup_figure(
                    "fig04",
                    "Jacobi 1024x1024",
                    App::Jacobi { n: 1024, iters: 25 },
                    &PROC_SWEEP,
                )
            },
        },
        Experiment {
            id: "fig05",
            title: "Jacobi page-size sensitivity (8 procs, 1024x1024)",
            run: || {
                page_size_figure(
                    "fig05",
                    "Jacobi 1024x1024, 8 procs",
                    App::Jacobi { n: 1024, iters: 25 },
                    &[1024, 2048, 4096, 8192, 16384],
                )
            },
        },
        Experiment {
            id: "table2",
            title: "Overhead for 8-processor Jacobi (1024x1024, 2 KB pages)",
            run: || {
                overhead_figure(
                    "table2",
                    "Jacobi 1024x1024, 8 procs",
                    App::Jacobi { n: 1024, iters: 25 },
                )
            },
        },
        Experiment {
            id: "fig06",
            title: "Water 64 molecules speedup + hit ratio",
            run: || {
                speedup_figure(
                    "fig06",
                    "Water 64 molecules",
                    App::Water {
                        molecules: 64,
                        steps: 2,
                    },
                    &PROC_SWEEP,
                )
            },
        },
        Experiment {
            id: "fig07",
            title: "Water 216 molecules speedup + hit ratio",
            run: || {
                speedup_figure(
                    "fig07",
                    "Water 216 molecules",
                    App::Water {
                        molecules: 216,
                        steps: 2,
                    },
                    &PROC_SWEEP,
                )
            },
        },
        Experiment {
            id: "fig08",
            title: "Water 343 molecules speedup + hit ratio",
            run: || {
                speedup_figure(
                    "fig08",
                    "Water 343 molecules",
                    App::Water {
                        molecules: 343,
                        steps: 2,
                    },
                    &PROC_SWEEP,
                )
            },
        },
        Experiment {
            id: "fig09",
            title: "Water page-size sensitivity (8 procs, 216 molecules)",
            run: || {
                page_size_figure(
                    "fig09",
                    "Water 216 molecules, 8 procs",
                    App::Water {
                        molecules: 216,
                        steps: 2,
                    },
                    &[2048, 4096, 6144, 8192],
                )
            },
        },
        Experiment {
            id: "table3",
            title: "Overhead for 8-processor Water (216 molecules)",
            run: || {
                overhead_figure(
                    "table3",
                    "Water 216 molecules, 8 procs",
                    App::Water {
                        molecules: 216,
                        steps: 2,
                    },
                )
            },
        },
        Experiment {
            id: "fig10",
            title: "Cholesky bcsstk14 speedup + hit ratio",
            run: || {
                speedup_figure(
                    "fig10",
                    "Cholesky bcsstk14",
                    App::Cholesky {
                        matrix: CholeskyMatrix::Bcsstk14,
                    },
                    &PROC_SWEEP,
                )
            },
        },
        Experiment {
            id: "fig11",
            title: "Cholesky bcsstk15 speedup + hit ratio",
            run: || {
                speedup_figure(
                    "fig11",
                    "Cholesky bcsstk15",
                    App::Cholesky {
                        matrix: CholeskyMatrix::Bcsstk15,
                    },
                    &PROC_SWEEP,
                )
            },
        },
        Experiment {
            id: "fig12",
            title: "Cholesky page-size sensitivity (8 procs, bcsstk14)",
            run: || {
                page_size_figure(
                    "fig12",
                    "Cholesky bcsstk14, 8 procs",
                    App::Cholesky {
                        matrix: CholeskyMatrix::Bcsstk14,
                    },
                    &[2048, 4096, 6144, 8192],
                )
            },
        },
        Experiment {
            id: "table4",
            title: "Overhead for 8-processor Cholesky (bcsstk14)",
            run: || {
                overhead_figure(
                    "table4",
                    "Cholesky bcsstk14, 8 procs",
                    App::Cholesky {
                        matrix: CholeskyMatrix::Bcsstk14,
                    },
                )
            },
        },
        Experiment {
            id: "fig13",
            title: "Network cache hit ratio vs Message Cache size (8 procs)",
            run: || {
                println!("== fig13: hit ratio vs Message Cache size, 8 procs ==");
                let sizes = [
                    16 * 1024,
                    32 * 1024,
                    64 * 1024,
                    128 * 1024,
                    256 * 1024,
                    512 * 1024,
                    1024 * 1024,
                ];
                let mut all = Vec::new();
                println!(
                    "{:>12} {:>14} {:>14} {:>14}",
                    "cache(KB)", "Jacobi(%)", "Water(%)", "Cholesky(%)"
                );
                let apps = [
                    App::Jacobi { n: 1024, iters: 25 },
                    App::Water {
                        molecules: 343,
                        steps: 2,
                    },
                    App::Cholesky {
                        matrix: CholeskyMatrix::Bcsstk14,
                    },
                ];
                let curves: Vec<_> = apps
                    .iter()
                    .map(|&app| {
                        experiments::cache_size_sweep(Config::paper_default(), app, 8, &sizes)
                    })
                    .collect();
                for (i, &size) in sizes.iter().enumerate() {
                    println!(
                        "{:>12} {:>14.1} {:>14.1} {:>14.1}",
                        size / 1024,
                        curves[0][i].hit_ratio_pct,
                        curves[1][i].hit_ratio_pct,
                        curves[2][i].hit_ratio_pct
                    );
                    all.push((size, curves[0][i], curves[1][i], curves[2][i]));
                }
                save_json("fig13", &all);
            },
        },
        Experiment {
            id: "fig14",
            title: "Node-to-node latency, CNI vs standard",
            run: || {
                println!("== fig14: node-to-node latency (100% hit) ==");
                let pts = experiments::latency_curve(
                    Config::paper_default(),
                    &[64, 256, 512, 1024, 2048, 3072, 4096],
                    5,
                );
                println!(
                    "{:>12} {:>12} {:>12} {:>14}",
                    "bytes", "CNI(us)", "Std(us)", "reduction(%)"
                );
                for p in &pts {
                    println!(
                        "{:>12} {:>12.1} {:>12.1} {:>14.1}",
                        p.bytes,
                        p.cni_us,
                        p.std_us,
                        (1.0 - p.cni_us / p.std_us) * 100.0
                    );
                }
                save_json("fig14", &pts);
            },
        },
        Experiment {
            id: "table5",
            title: "Improvement with unrestricted ATM cell size (8 procs)",
            run: || {
                println!("== table5: unrestricted-cell-size improvement, 8 procs ==");
                println!("{:>24} {:>16}", "application", "improvement(%)");
                let mut rows = Vec::new();
                for (name, app) in paper_apps() {
                    let pct = experiments::jumbo_improvement_pct(Config::paper_default(), app, 8);
                    println!("{name:>24} {pct:>16.2}");
                    rows.push((name, pct));
                }
                save_json("table5", &rows);
            },
        },
    ]
}

/// Run every experiment whose id or title contains one of `filters` (all
/// when empty), in registry order.
///
/// Each experiment internally fans its independent runs out over a
/// [`cni_batch::Pool`] sized by [`cni_batch::default_jobs`] (override
/// with `CNI_JOBS=N`); the printed rows are identical at any worker
/// count.
pub fn run_filtered(filters: &[String]) {
    eprintln!(
        "[experiments run on {} worker(s); set CNI_JOBS to change]",
        cni_batch::default_jobs()
    );
    for e in experiments() {
        let selected = filters.is_empty()
            || filters
                .iter()
                .any(|f| e.id.contains(f.as_str()) || e.title.contains(f.as_str()));
        if selected {
            // Designated host-timing module: measured wall time is the
            // bench harness's own output, never part of a RunReport.
            #[allow(clippy::disallowed_methods)]
            let t = std::time::Instant::now();
            (e.run)();
            eprintln!("[{} done in {:.1?}]", e.id, t.elapsed());
            println!();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_covers_every_table_and_figure() {
        let ids: Vec<&str> = experiments().iter().map(|e| e.id).collect();
        for want in [
            "table1", "fig02", "fig03", "fig04", "fig05", "table2", "fig06", "fig07", "fig08",
            "fig09", "table3", "fig10", "fig11", "fig12", "table4", "fig13", "fig14", "table5",
        ] {
            assert!(ids.contains(&want), "missing experiment {want}");
        }
        assert_eq!(ids.len(), 18);
    }

    #[test]
    fn paper_apps_cover_all_three() {
        let names: Vec<&str> = paper_apps().iter().map(|(n, _)| *n).collect();
        assert!(names.iter().any(|n| n.contains("jacobi")));
        assert!(names.iter().any(|n| n.contains("water")));
        assert!(names.iter().any(|n| n.contains("cholesky")));
    }
}
