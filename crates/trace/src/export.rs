//! Trace exporters: Chrome trace-event JSON and newline-delimited JSON.
//!
//! * [`write_chrome`] emits the [Chrome trace-event format] that Perfetto
//!   and `chrome://tracing` load directly. Each simulated node becomes a
//!   *process* and each component (event queue, CPU, NIC DMA, Message
//!   Cache, PATHFINDER, ADC, notify, DSM, wire, metrics) a named *thread*
//!   track inside it, so a cluster run renders as one lane per
//!   node × component. DMA and wire transfers render as duration slices,
//!   metrics samples as counter tracks, everything else as instants.
//! * [`write_jsonl`] emits one [`TraceRecord`] per line. Record order is
//!   the simulation's deterministic emission order, so two runs with the
//!   same configuration and seed produce byte-identical files — the
//!   property the determinism integration test asserts.
//!
//! [Chrome trace-event format]:
//!     https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use crate::{MetricsSample, TraceEvent, TraceRecord, NO_NODE};
use serde_json::{json, Map, Value};
use std::collections::BTreeSet;
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// Route one job of a batch to its own trace file:
/// `<dir>/<index>-<label>.<ext>`, with the label sanitised to
/// filesystem-safe characters (anything outside `[A-Za-z0-9._-]` becomes
/// `_`). The zero-padded job index keeps a directory listing in
/// submission order and keeps paths unique even when two jobs share a
/// label.
///
/// ```
/// use cni_trace::export::job_trace_path;
/// use std::path::Path;
///
/// let p = job_trace_path(Path::new("traces"), 3, "jacobi 64/cni", "jsonl");
/// assert_eq!(p, Path::new("traces/0003-jacobi_64_cni.jsonl"));
/// ```
pub fn job_trace_path(dir: &Path, index: usize, label: &str, ext: &str) -> PathBuf {
    let safe: String = label
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-') {
                c
            } else {
                '_'
            }
        })
        .collect();
    dir.join(format!("{index:04}-{safe}.{ext}"))
}

/// Stable thread-track ids for the Chrome export (one lane per component).
/// Append-only: existing positions are the `tid`s of already-exported
/// traces.
const TRACKS: [&str; 13] = [
    "event-queue",
    "cpu",
    "nic-dma",
    "msg-cache",
    "pathfinder",
    "adc",
    "notify",
    "dsm",
    "wire",
    "metrics",
    "faults",
    "span",
    "util",
];

fn tid(track: &str) -> u64 {
    TRACKS.iter().position(|t| *t == track).unwrap_or(0) as u64
}

/// Chrome `pid` for a node (the engine's [`NO_NODE`] gets pid 0).
fn pid(node: u32) -> u64 {
    if node == NO_NODE {
        0
    } else {
        node as u64 + 1
    }
}

fn ts_us(t_ps: u64) -> f64 {
    t_ps as f64 / 1e6
}

/// The event's payload fields as a Chrome `args` object (the serde
/// representation minus the `ev` tag).
fn args(event: &TraceEvent) -> Value {
    let mut v = serde_json::to_value(event).expect("trace events serialize");
    if let Value::Object(m) = &mut v {
        m.remove("ev");
    }
    v
}

fn name(event: &TraceEvent) -> String {
    match serde_json::to_value(event).expect("trace events serialize") {
        Value::Object(m) => m
            .get("ev")
            .and_then(Value::as_str)
            .unwrap_or("event")
            .to_string(),
        _ => "event".to_string(),
    }
}

/// Counter tracks derived from one metrics sample: (counter name, series).
fn counters(s: &MetricsSample) -> Vec<(&'static str, Value)> {
    vec![
        (
            "dma bytes",
            json!({"to_board": s.dma_bytes_to_board, "to_host": s.dma_bytes_to_host}),
        ),
        (
            "messages",
            json!({"tx": s.tx_messages, "rx": s.rx_messages}),
        ),
        (
            "msg-cache",
            json!({"hits": s.tx_cache_hits, "lookups": s.tx_page_lookups}),
        ),
        (
            "notify",
            json!({"interrupts": s.interrupts, "polls": s.polls, "aih": s.aih_dispatches}),
        ),
        (
            "dsm fetches",
            json!({"pages": s.page_fetches, "diffs": s.diff_fetches, "invalidations": s.invalidations}),
        ),
    ]
}

fn chrome_events(rec: &TraceRecord) -> Vec<Value> {
    let p = pid(rec.node);
    let t = tid(rec.event.track());
    match &rec.event {
        TraceEvent::DmaToBoard { dur_ps, .. }
        | TraceEvent::DmaToHost { dur_ps, .. }
        | TraceEvent::ProtoTx { dur_ps, .. } => {
            // Duration slice: the record is stamped at completion time.
            let start = rec.t_ps.saturating_sub(*dur_ps);
            vec![json!({
                "name": name(&rec.event),
                "ph": "X",
                "ts": ts_us(start),
                "dur": ts_us(*dur_ps),
                "pid": p,
                "tid": t,
                "args": args(&rec.event),
            })]
        }
        TraceEvent::Metrics(sample) => counters(sample)
            .into_iter()
            .map(|(cname, series)| {
                json!({
                    "name": cname,
                    "ph": "C",
                    "ts": ts_us(rec.t_ps),
                    "pid": p,
                    "tid": t,
                    "args": series,
                })
            })
            .collect(),
        // Utilization gauges render as Perfetto counter tracks: busy
        // fractions in percent of the sampled interval, ring/queue depths
        // as raw occupancy.
        TraceEvent::UtilNode {
            busy_ps,
            ingress_ps,
            egress_ps,
            ring_hw,
            interval_ps,
        } => {
            let pct = |v: u64| {
                if *interval_ps == 0 {
                    0.0
                } else {
                    v as f64 * 100.0 / *interval_ps as f64
                }
            };
            vec![
                json!({
                    "name": "utilization %",
                    "ph": "C",
                    "ts": ts_us(rec.t_ps),
                    "pid": p,
                    "tid": t,
                    "args": json!({
                        "nic": pct(*busy_ps),
                        "ingress": pct(*ingress_ps),
                        "egress": pct(*egress_ps),
                    }),
                }),
                json!({
                    "name": "rx-ring high-water",
                    "ph": "C",
                    "ts": ts_us(rec.t_ps),
                    "pid": p,
                    "tid": t,
                    "args": json!({"slots": *ring_hw}),
                }),
            ]
        }
        TraceEvent::UtilQueue { depth } => vec![json!({
            "name": "event-queue depth",
            "ph": "C",
            "ts": ts_us(rec.t_ps),
            "pid": p,
            "tid": t,
            "args": json!({"pending": *depth}),
        })],
        _ => vec![json!({
            "name": name(&rec.event),
            "ph": "i",
            "ts": ts_us(rec.t_ps),
            "pid": p,
            "tid": t,
            "s": "t",
            "args": args(&rec.event),
        })],
    }
}

/// Write `records` as a Chrome trace-event JSON object (open the file in
/// Perfetto or `chrome://tracing`). One process per node, one thread
/// track per component.
pub fn write_chrome<W: Write>(w: &mut W, records: &[TraceRecord]) -> io::Result<()> {
    // Metadata first: name every process and thread track in use.
    let mut nodes = BTreeSet::new();
    let mut lanes = BTreeSet::new();
    for r in records {
        nodes.insert(r.node);
        lanes.insert((pid(r.node), tid(r.event.track()), r.event.track()));
    }
    let mut events: Vec<Value> = Vec::with_capacity(records.len() + nodes.len() + lanes.len());
    for &n in &nodes {
        let pname = if n == NO_NODE {
            "simulator".to_string()
        } else {
            format!("node{n}")
        };
        events.push(json!({
            "name": "process_name",
            "ph": "M",
            "pid": pid(n),
            "args": json!({"name": pname}),
        }));
    }
    for &(p, t, track) in &lanes {
        events.push(json!({
            "name": "thread_name",
            "ph": "M",
            "pid": p,
            "tid": t,
            "args": json!({"name": track}),
        }));
    }
    for r in records {
        events.extend(chrome_events(r));
    }
    let mut root = Map::new();
    root.insert("traceEvents".to_string(), Value::Array(events));
    root.insert("displayTimeUnit".to_string(), Value::String("ns".into()));
    serde_json::to_writer(&mut *w, &Value::Object(root)).map_err(io::Error::other)?;
    writeln!(w)
}

/// Write `records` as newline-delimited JSON, one record per line, in
/// emission order. Deterministic: identically-seeded runs produce
/// byte-identical output.
pub fn write_jsonl<W: Write>(w: &mut W, records: &[TraceRecord]) -> io::Result<()> {
    for r in records {
        serde_json::to_writer(&mut *w, r).map_err(io::Error::other)?;
        writeln!(w)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TraceSink;

    fn sample_records() -> Vec<TraceRecord> {
        let sink = TraceSink::ring(64);
        sink.emit_at(
            1_000,
            NO_NODE,
            TraceEvent::QueueDispatch { seq: 1, pending: 3 },
        );
        sink.emit_at(
            2_000,
            0,
            TraceEvent::DmaToBoard {
                bytes: 2048,
                dur_ps: 500,
            },
        );
        sink.emit_at(3_000, 1, TraceEvent::MsgCacheHit { page: 7 });
        sink.emit_at(
            4_000,
            1,
            TraceEvent::Metrics(MetricsSample {
                interval_ps: 1_000,
                interrupts: 2,
                ..MetricsSample::default()
            }),
        );
        sink.drain()
    }

    #[test]
    fn chrome_export_is_valid_json_with_tracks() {
        let mut buf = Vec::new();
        write_chrome(&mut buf, &sample_records()).unwrap();
        let v: Value = serde_json::from_slice(&buf).unwrap();
        let events = v["traceEvents"].as_array().unwrap();
        // 3 process_name + 4 thread_name metadata, 2 instants, 1 X, 5 C.
        assert!(events.len() >= 10, "got {} events", events.len());
        let slice = events
            .iter()
            .find(|e| e["ph"] == "X")
            .expect("DMA renders as a duration slice");
        assert_eq!(slice["dur"], json!(0.0005));
        assert_eq!(slice["ts"], json!(0.0015));
        assert!(events.iter().any(|e| e["ph"] == "C"));
        assert!(events
            .iter()
            .any(|e| e["name"] == "process_name" && e["args"]["name"] == "simulator"));
        assert!(events
            .iter()
            .any(|e| e["name"] == "thread_name" && e["args"]["name"] == "msg-cache"));
    }

    #[test]
    fn jsonl_is_one_record_per_line_and_deterministic() {
        let recs = sample_records();
        let mut a = Vec::new();
        let mut b = Vec::new();
        write_jsonl(&mut a, &recs).unwrap();
        write_jsonl(&mut b, &recs).unwrap();
        assert_eq!(a, b);
        let lines: Vec<&[u8]> = a.split(|&c| c == b'\n').filter(|l| !l.is_empty()).collect();
        assert_eq!(lines.len(), recs.len());
        for l in lines {
            let _: TraceRecord = serde_json::from_slice(l).unwrap();
        }
    }
}
