//! `cni-trace` — structured simulation tracing and time-series metrics for
//! the CNI reproduction.
//!
//! The paper's whole evaluation is built from *within-run* visibility:
//! the overhead breakdowns of Tables 2–4 and the hit-ratio/latency curves
//! of Figures 2–14 all come from observing when cache misses, protocol
//! stalls and DMA transfers actually happen. This crate provides that
//! observability layer for the reproduction:
//!
//! * [`TraceEvent`] — a typed vocabulary of simulation events (event-queue
//!   dispatch, co-thread switches, DMA transfers, Message-Cache
//!   hits/misses/evictions/snoops, PATHFINDER classifications, ADC queue
//!   operations, interrupt-vs-poll notifications, DSM protocol
//!   transitions, and periodic [`MetricsSample`] counters). Every variant
//!   carries only `Copy` scalars, so recording an event never allocates.
//! * [`TraceSink`] — a cheap cloneable handle every instrumented component
//!   holds. [`TraceSink::Disabled`] (the default) makes every hook a
//!   single enum branch: no allocation, no formatting, no locking. The
//!   enabled sink records into a bounded ring buffer that drops the oldest
//!   events once full (and counts the drops).
//! * [`export`] — serialisers to Chrome trace-event JSON (loadable in
//!   Perfetto or `chrome://tracing`, one track per node × component) and
//!   newline-delimited JSON (one [`TraceRecord`] per line, byte-identical
//!   across identically-seeded runs).
//!
//! The crate is deliberately freestanding — it depends on nothing else in
//! the workspace so the simulation kernel itself can be instrumented.
//! Timestamps are raw picoseconds (the unit of `cni_sim::SimTime`).
//!
//! ```
//! use cni_trace::{TraceEvent, TraceSink};
//!
//! let sink = TraceSink::ring(1024);
//! sink.set_now(5_000); // the event loop advances virtual time
//! sink.emit(0, TraceEvent::Interrupt);
//! sink.emit_at(7_000, 1, TraceEvent::Poll);
//! let records = sink.drain();
//! assert_eq!(records.len(), 2);
//! assert_eq!(records[0].t_ps, 5_000);
//!
//! // Disabled sinks are free: no buffer exists and nothing is recorded.
//! let off = TraceSink::Disabled;
//! off.emit(0, TraceEvent::Interrupt);
//! assert!(off.drain().is_empty());
//! ```

#![deny(missing_docs)]

pub mod export;

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
// cni-lint: allow(host-thread) -- the trace ring is shared with application co-threads; appends carry explicit (time, seq) keys, so lock hand-off order cannot leak into output
use std::sync::{Arc, Mutex};

/// The `node` value for events that belong to the simulation engine itself
/// rather than to any one workstation (event-queue dispatch).
pub const NO_NODE: u32 = u32::MAX;

/// One interval's worth of counter deltas from the periodic metrics
/// sampler: how much each rate-style statistic grew during the interval
/// ending at the record's timestamp. Dividing by `interval_ps` yields
/// rates (DMA bytes/s, interrupts/s); `tx_cache_hits / tx_page_lookups`
/// yields the hit ratio *over time* rather than end-of-run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MetricsSample {
    /// Length of the sampled interval in picoseconds.
    pub interval_ps: u64,
    /// Messages transmitted by this node's NIC.
    pub tx_messages: u64,
    /// Messages received by this node's NIC.
    pub rx_messages: u64,
    /// Bytes DMAed host → board.
    pub dma_bytes_to_board: u64,
    /// Bytes DMAed board → host.
    pub dma_bytes_to_host: u64,
    /// Transmit-path Message-Cache hits.
    pub tx_cache_hits: u64,
    /// Transmit-path page lookups (hit-ratio denominator).
    pub tx_page_lookups: u64,
    /// Host interrupts taken.
    pub interrupts: u64,
    /// Host polls that found work.
    pub polls: u64,
    /// Messages handled by Application Interrupt Handlers.
    pub aih_dispatches: u64,
    /// Full-page fetches issued by the DSM protocol.
    pub page_fetches: u64,
    /// Diff fetches issued by the DSM protocol.
    pub diff_fetches: u64,
    /// Page invalidations performed by the DSM protocol.
    pub invalidations: u64,
}

impl MetricsSample {
    /// The per-interval delta between two cumulative snapshots: every
    /// counter of `self` minus the matching counter of `prev`, stamped
    /// with `interval_ps`. The periodic sampler keeps cumulative totals
    /// and emits these deltas.
    pub fn delta_from(&self, prev: &MetricsSample, interval_ps: u64) -> MetricsSample {
        MetricsSample {
            interval_ps,
            tx_messages: self.tx_messages - prev.tx_messages,
            rx_messages: self.rx_messages - prev.rx_messages,
            dma_bytes_to_board: self.dma_bytes_to_board - prev.dma_bytes_to_board,
            dma_bytes_to_host: self.dma_bytes_to_host - prev.dma_bytes_to_host,
            tx_cache_hits: self.tx_cache_hits - prev.tx_cache_hits,
            tx_page_lookups: self.tx_page_lookups - prev.tx_page_lookups,
            interrupts: self.interrupts - prev.interrupts,
            polls: self.polls - prev.polls,
            aih_dispatches: self.aih_dispatches - prev.aih_dispatches,
            page_fetches: self.page_fetches - prev.page_fetches,
            diff_fetches: self.diff_fetches - prev.diff_fetches,
            invalidations: self.invalidations - prev.invalidations,
        }
    }
}

/// A typed simulation event. Variants carry only `Copy` scalars so that
/// recording one is allocation-free; human-readable names and track
/// assignments are resolved at export time, never on the hot path.
///
/// Serializes internally tagged: a JSON object whose `ev` member is the
/// snake_case variant name, with the variant's fields alongside it (see
/// the hand-written [`Serialize`] impl below).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum TraceEvent {
    /// The engine's event queue dispatched an event (`seq` is the queue's
    /// insertion sequence number, `pending` the events still queued).
    QueueDispatch {
        /// Insertion sequence number of the dispatched event.
        seq: u64,
        /// Events still pending after this dispatch.
        pending: u32,
    },
    /// Control transferred between the engine and a processor co-thread.
    CothreadSwitch {
        /// Which simulated CPU.
        cpu: u32,
        /// `true` when control enters the program, `false` when it yields
        /// back to the engine.
        enter: bool,
    },
    /// A host → board DMA transfer completed at the record's timestamp.
    DmaToBoard {
        /// Payload bytes moved.
        bytes: u64,
        /// Bus time consumed, including queueing, in picoseconds.
        dur_ps: u64,
    },
    /// A board → host DMA transfer completed at the record's timestamp.
    DmaToHost {
        /// Payload bytes moved.
        bytes: u64,
        /// Bus time consumed, including queueing, in picoseconds.
        dur_ps: u64,
    },
    /// A transmit-path Message-Cache lookup hit: the page was
    /// board-resident and the host→board DMA was skipped.
    MsgCacheHit {
        /// The looked-up host page.
        page: u64,
    },
    /// A transmit-path Message-Cache lookup missed.
    MsgCacheMiss {
        /// The looked-up host page.
        page: u64,
    },
    /// A page was bound into the Message Cache (transmit-miss caching or
    /// receive caching), possibly evicting another binding.
    MsgCacheInsert {
        /// The newly bound page.
        page: u64,
        /// The page CLOCK evicted to make room, if any.
        evicted: Option<u64>,
    },
    /// A snooped host write was offered to the Message Cache.
    MsgCacheSnoop {
        /// The written page.
        page: u64,
        /// Whether the page was resident (board copy updated in place).
        resident: bool,
    },
    /// A page binding was explicitly invalidated.
    MsgCacheInvalidate {
        /// The invalidated page.
        page: u64,
    },
    /// PATHFINDER classified an arriving PDU header.
    Classify {
        /// Comparison cells evaluated.
        cells: u32,
        /// Whether an installed pattern accepted.
        matched: bool,
    },
    /// A PDU was dispatched to an Application Interrupt Handler on the
    /// board.
    AihDispatch {
        /// The handler id the classifier routed to.
        handler: u32,
    },
    /// The application enqueued a descriptor on an Application Device
    /// Channel ring.
    AdcEnqueue {
        /// Channel id.
        channel: u32,
        /// Descriptor length in bytes.
        len: u32,
    },
    /// The board dequeued a descriptor from an Application Device Channel
    /// ring.
    AdcDequeue {
        /// Channel id.
        channel: u32,
        /// Descriptor length in bytes.
        len: u32,
    },
    /// The NIC raised a host interrupt to notify a delivery.
    Interrupt,
    /// The application's poll picked up a delivery (no interrupt).
    Poll,
    /// The application read-faulted on a shared page.
    DsmReadFault {
        /// The faulted page.
        page: u32,
    },
    /// The application write-faulted on a shared page.
    DsmWriteFault {
        /// The faulted page.
        page: u32,
    },
    /// The application acquired a DSM lock.
    DsmAcquire {
        /// The lock.
        lock: u32,
        /// `true` when satisfied locally (lazy-release reuse), `false`
        /// when the acquire went remote.
        local: bool,
    },
    /// The application released a DSM lock (closing the interval).
    DsmRelease {
        /// The lock.
        lock: u32,
    },
    /// The application arrived at the global barrier.
    DsmBarrier {
        /// Barrier epoch.
        epoch: u32,
    },
    /// The DSM protocol engine handled an incoming protocol message
    /// (acquire-req/fwd/grant, barrier-arrive/release, page-req/resp,
    /// diff-req/resp — `kind` is the wire kind byte, `0xD0..=0xD8`).
    DsmMsg {
        /// Protocol kind byte.
        kind: u8,
        /// Sending processor.
        from: u32,
    },
    /// A message entered the transport path; the record's timestamp is
    /// its arrival at the destination NIC.
    ProtoTx {
        /// Wire kind byte (`0xD0..=0xD8` protocol, `0xA0` application).
        kind: u8,
        /// On-the-wire bytes.
        bytes: u32,
        /// Send-request to last-cell-arrival latency in picoseconds.
        dur_ps: u64,
    },
    /// A periodic metrics sample (counter deltas for the interval ending
    /// at the record's timestamp).
    Metrics(MetricsSample),
    /// The fault injector discarded a cell in the fabric (random loss or
    /// a scheduled brownout window).
    CellDropped {
        /// VCI of the PDU the cell belonged to.
        vci: u32,
        /// Index of the cell within its PDU.
        cell: u32,
    },
    /// AAL5 reassembly rejected a PDU (CRC-32 or length-check failure).
    CrcFail {
        /// VCI of the rejected PDU.
        vci: u32,
    },
    /// The reliability layer armed a retransmission timer.
    RetransmitScheduled {
        /// Oldest unacknowledged sequence number the timer guards.
        seq: u64,
        /// Timeout in picoseconds (after backoff).
        rto_ps: u64,
    },
    /// The reliability layer retransmitted a frame.
    RetransmitFired {
        /// Sequence number of the retransmitted frame.
        seq: u64,
        /// Transmission attempt number (1 = first retransmission).
        attempt: u32,
    },
    /// An in-order frame (or descriptor) was dropped because its receive
    /// ring was full; the sender will retransmit after a NAK or timeout.
    RingOverflow {
        /// The overflowing channel (or receiving node for wire frames).
        channel: u32,
    },
    /// A causal span opened: one message, frame or ACK entering its
    /// lifecycle at the record's timestamp. Span ids are allocated by the
    /// engine in deterministic event order; id 0 is never allocated, so a
    /// `parent` of 0 marks a root span (no recorded cause).
    SpanOpen {
        /// This span's id.
        span: u64,
        /// The span that caused this one, or 0 for a root.
        parent: u64,
        /// Span class: [`SPAN_MSG`], [`SPAN_FRAME`] or [`SPAN_ACK`].
        class: u8,
        /// Wire kind byte (`0xD0..=0xD8` protocol, `0xA0` application,
        /// `0xF1` ACK).
        kind: u8,
        /// Sending node.
        src: u32,
        /// Receiving node.
        dst: u32,
        /// Payload bytes.
        bytes: u32,
    },
    /// Transmit-side stage durations of a span, recorded once the last
    /// cell has arrived at the destination NIC.
    SpanTx {
        /// The span these stages belong to.
        span: u64,
        /// Host-side send work (kernel/ADC cycles + cache flush) before
        /// the NIC takes over.
        host_dma_ps: u64,
        /// NIC transmit-queue occupancy: descriptor fetch, Message-Cache
        /// lookup, host→board DMA and first-cell segmentation.
        tx_queue_ps: u64,
        /// Wire time: first bit on the ingress link to last cell arrival.
        wire_ps: u64,
    },
    /// Receive-side stage durations of a span, recorded when the PDU is
    /// ready for dispatch on the receiving NIC.
    SpanRx {
        /// The span these stages belong to.
        span: u64,
        /// Wait for the receiving NIC processor (busy with earlier work).
        rx_nic_ps: u64,
        /// AAL5 reassembly (SAR) time.
        sar_ps: u64,
    },
    /// A span closed: the message's effect was delivered (handler
    /// finished, payload landed in host memory, or frame/ACK ingested).
    /// The handler stage of a span is the close-to-open distance minus
    /// its recorded tx/rx stage durations.
    SpanClose {
        /// The closing span.
        span: u64,
    },
    /// Per-node utilization gauges for the interval ending at the
    /// record's timestamp: virtual-time busy accumulator deltas for the
    /// NIC processor and both access links, plus the receive-ring
    /// high-water mark observed during the interval.
    UtilNode {
        /// NIC-processor busy time during the interval.
        busy_ps: u64,
        /// Ingress-link (node → switch) occupancy during the interval.
        ingress_ps: u64,
        /// Egress-link (switch → node) occupancy during the interval.
        egress_ps: u64,
        /// Receive-ring high-water mark (slots) during the interval.
        ring_hw: u32,
        /// Length of the sampled interval in picoseconds.
        interval_ps: u64,
    },
    /// Engine-level event-queue depth gauge (sampled at the metrics tick,
    /// attributed to [`NO_NODE`]).
    UtilQueue {
        /// Events pending in the simulation queue.
        depth: u32,
    },
}

/// [`TraceEvent::SpanOpen`] class: a message-level span (one `send_pdu`
/// through delivery).
pub const SPAN_MSG: u8 = 0;
/// [`TraceEvent::SpanOpen`] class: one go-back-N frame transmission
/// (retransmissions open fresh frame spans parented to the original).
pub const SPAN_FRAME: u8 = 1;
/// [`TraceEvent::SpanOpen`] class: a cumulative ACK frame.
pub const SPAN_ACK: u8 = 2;

impl TraceEvent {
    /// The component track this event renders on (stable name used by the
    /// Chrome exporter's `thread_name` metadata and useful for filtering).
    pub fn track(&self) -> &'static str {
        use TraceEvent::*;
        match self {
            QueueDispatch { .. } => "event-queue",
            CothreadSwitch { .. } => "cpu",
            DmaToBoard { .. } | DmaToHost { .. } => "nic-dma",
            MsgCacheHit { .. }
            | MsgCacheMiss { .. }
            | MsgCacheInsert { .. }
            | MsgCacheSnoop { .. }
            | MsgCacheInvalidate { .. } => "msg-cache",
            Classify { .. } | AihDispatch { .. } => "pathfinder",
            AdcEnqueue { .. } | AdcDequeue { .. } => "adc",
            Interrupt | Poll => "notify",
            DsmReadFault { .. }
            | DsmWriteFault { .. }
            | DsmAcquire { .. }
            | DsmRelease { .. }
            | DsmBarrier { .. }
            | DsmMsg { .. } => "dsm",
            ProtoTx { .. } => "wire",
            Metrics(_) => "metrics",
            CellDropped { .. }
            | CrcFail { .. }
            | RetransmitScheduled { .. }
            | RetransmitFired { .. }
            | RingOverflow { .. } => "faults",
            SpanOpen { .. } | SpanTx { .. } | SpanRx { .. } | SpanClose { .. } => "span",
            UtilNode { .. } | UtilQueue { .. } => "util",
        }
    }

    /// The snake_case wire tag stored under the `ev` key.
    fn tag(&self) -> &'static str {
        use TraceEvent::*;
        match self {
            QueueDispatch { .. } => "queue_dispatch",
            CothreadSwitch { .. } => "cothread_switch",
            DmaToBoard { .. } => "dma_to_board",
            DmaToHost { .. } => "dma_to_host",
            MsgCacheHit { .. } => "msg_cache_hit",
            MsgCacheMiss { .. } => "msg_cache_miss",
            MsgCacheInsert { .. } => "msg_cache_insert",
            MsgCacheSnoop { .. } => "msg_cache_snoop",
            MsgCacheInvalidate { .. } => "msg_cache_invalidate",
            Classify { .. } => "classify",
            AihDispatch { .. } => "aih_dispatch",
            AdcEnqueue { .. } => "adc_enqueue",
            AdcDequeue { .. } => "adc_dequeue",
            Interrupt => "interrupt",
            Poll => "poll",
            DsmReadFault { .. } => "dsm_read_fault",
            DsmWriteFault { .. } => "dsm_write_fault",
            DsmAcquire { .. } => "dsm_acquire",
            DsmRelease { .. } => "dsm_release",
            DsmBarrier { .. } => "dsm_barrier",
            DsmMsg { .. } => "dsm_msg",
            ProtoTx { .. } => "proto_tx",
            Metrics(_) => "metrics",
            CellDropped { .. } => "cell_dropped",
            CrcFail { .. } => "crc_fail",
            RetransmitScheduled { .. } => "retransmit_scheduled",
            RetransmitFired { .. } => "retransmit_fired",
            RingOverflow { .. } => "ring_overflow",
            SpanOpen { .. } => "span_open",
            SpanTx { .. } => "span_tx",
            SpanRx { .. } => "span_rx",
            SpanClose { .. } => "span_close",
            UtilNode { .. } => "util_node",
            UtilQueue { .. } => "util_queue",
        }
    }
}

// TraceEvent/TraceRecord serialize internally tagged and flattened — shapes
// the vendored derive does not generate — so their impls are hand-written.

impl Serialize for TraceEvent {
    fn to_value(&self) -> serde::Value {
        use serde::Value;
        use TraceEvent::*;
        let mut m = serde::Map::new();
        m.insert("ev".to_string(), Value::String(self.tag().to_string()));
        let mut put = |k: &str, v: Value| {
            m.insert(k.to_string(), v);
        };
        match *self {
            QueueDispatch { seq, pending } => {
                put("seq", seq.to_value());
                put("pending", pending.to_value());
            }
            CothreadSwitch { cpu, enter } => {
                put("cpu", cpu.to_value());
                put("enter", enter.to_value());
            }
            DmaToBoard { bytes, dur_ps } | DmaToHost { bytes, dur_ps } => {
                put("bytes", bytes.to_value());
                put("dur_ps", dur_ps.to_value());
            }
            MsgCacheHit { page } | MsgCacheMiss { page } | MsgCacheInvalidate { page } => {
                put("page", page.to_value());
            }
            MsgCacheInsert { page, evicted } => {
                put("page", page.to_value());
                put("evicted", evicted.to_value());
            }
            MsgCacheSnoop { page, resident } => {
                put("page", page.to_value());
                put("resident", resident.to_value());
            }
            Classify { cells, matched } => {
                put("cells", cells.to_value());
                put("matched", matched.to_value());
            }
            AihDispatch { handler } => put("handler", handler.to_value()),
            AdcEnqueue { channel, len } | AdcDequeue { channel, len } => {
                put("channel", channel.to_value());
                put("len", len.to_value());
            }
            Interrupt | Poll => {}
            DsmReadFault { page } | DsmWriteFault { page } => put("page", page.to_value()),
            DsmAcquire { lock, local } => {
                put("lock", lock.to_value());
                put("local", local.to_value());
            }
            DsmRelease { lock } => put("lock", lock.to_value()),
            DsmBarrier { epoch } => put("epoch", epoch.to_value()),
            DsmMsg { kind, from } => {
                put("kind", kind.to_value());
                put("from", from.to_value());
            }
            ProtoTx {
                kind,
                bytes,
                dur_ps,
            } => {
                put("kind", kind.to_value());
                put("bytes", bytes.to_value());
                put("dur_ps", dur_ps.to_value());
            }
            Metrics(sample) => {
                if let Value::Object(fields) = sample.to_value() {
                    for (k, v) in fields.entries() {
                        put(k, v.clone());
                    }
                }
            }
            CellDropped { vci, cell } => {
                put("vci", vci.to_value());
                put("cell", cell.to_value());
            }
            CrcFail { vci } => put("vci", vci.to_value()),
            RetransmitScheduled { seq, rto_ps } => {
                put("seq", seq.to_value());
                put("rto_ps", rto_ps.to_value());
            }
            RetransmitFired { seq, attempt } => {
                put("seq", seq.to_value());
                put("attempt", attempt.to_value());
            }
            RingOverflow { channel } => put("channel", channel.to_value()),
            SpanOpen {
                span,
                parent,
                class,
                kind,
                src,
                dst,
                bytes,
            } => {
                put("span", span.to_value());
                put("parent", parent.to_value());
                put("class", class.to_value());
                put("kind", kind.to_value());
                put("src", src.to_value());
                put("dst", dst.to_value());
                put("bytes", bytes.to_value());
            }
            SpanTx {
                span,
                host_dma_ps,
                tx_queue_ps,
                wire_ps,
            } => {
                put("span", span.to_value());
                put("host_dma_ps", host_dma_ps.to_value());
                put("tx_queue_ps", tx_queue_ps.to_value());
                put("wire_ps", wire_ps.to_value());
            }
            SpanRx {
                span,
                rx_nic_ps,
                sar_ps,
            } => {
                put("span", span.to_value());
                put("rx_nic_ps", rx_nic_ps.to_value());
                put("sar_ps", sar_ps.to_value());
            }
            SpanClose { span } => put("span", span.to_value()),
            UtilNode {
                busy_ps,
                ingress_ps,
                egress_ps,
                ring_hw,
                interval_ps,
            } => {
                put("busy_ps", busy_ps.to_value());
                put("ingress_ps", ingress_ps.to_value());
                put("egress_ps", egress_ps.to_value());
                put("ring_hw", ring_hw.to_value());
                put("interval_ps", interval_ps.to_value());
            }
            UtilQueue { depth } => put("depth", depth.to_value()),
        }
        Value::Object(m)
    }
}

impl Deserialize for TraceEvent {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        use serde::DeError;
        let o = v
            .as_object()
            .ok_or_else(|| DeError::msg("expected trace event object"))?;
        let tag = o
            .get("ev")
            .and_then(|t| t.as_str())
            .ok_or_else(|| DeError::msg("missing \"ev\" tag"))?;
        fn field<T: Deserialize>(o: &serde::Map, k: &str) -> Result<T, serde::DeError> {
            T::from_value(o.get(k).unwrap_or(&serde::Value::Null)).map_err(|e| e.at(k))
        }
        use TraceEvent::*;
        Ok(match tag {
            "queue_dispatch" => QueueDispatch {
                seq: field(o, "seq")?,
                pending: field(o, "pending")?,
            },
            "cothread_switch" => CothreadSwitch {
                cpu: field(o, "cpu")?,
                enter: field(o, "enter")?,
            },
            "dma_to_board" => DmaToBoard {
                bytes: field(o, "bytes")?,
                dur_ps: field(o, "dur_ps")?,
            },
            "dma_to_host" => DmaToHost {
                bytes: field(o, "bytes")?,
                dur_ps: field(o, "dur_ps")?,
            },
            "msg_cache_hit" => MsgCacheHit {
                page: field(o, "page")?,
            },
            "msg_cache_miss" => MsgCacheMiss {
                page: field(o, "page")?,
            },
            "msg_cache_insert" => MsgCacheInsert {
                page: field(o, "page")?,
                evicted: field(o, "evicted")?,
            },
            "msg_cache_snoop" => MsgCacheSnoop {
                page: field(o, "page")?,
                resident: field(o, "resident")?,
            },
            "msg_cache_invalidate" => MsgCacheInvalidate {
                page: field(o, "page")?,
            },
            "classify" => Classify {
                cells: field(o, "cells")?,
                matched: field(o, "matched")?,
            },
            "aih_dispatch" => AihDispatch {
                handler: field(o, "handler")?,
            },
            "adc_enqueue" => AdcEnqueue {
                channel: field(o, "channel")?,
                len: field(o, "len")?,
            },
            "adc_dequeue" => AdcDequeue {
                channel: field(o, "channel")?,
                len: field(o, "len")?,
            },
            "interrupt" => Interrupt,
            "poll" => Poll,
            "dsm_read_fault" => DsmReadFault {
                page: field(o, "page")?,
            },
            "dsm_write_fault" => DsmWriteFault {
                page: field(o, "page")?,
            },
            "dsm_acquire" => DsmAcquire {
                lock: field(o, "lock")?,
                local: field(o, "local")?,
            },
            "dsm_release" => DsmRelease {
                lock: field(o, "lock")?,
            },
            "dsm_barrier" => DsmBarrier {
                epoch: field(o, "epoch")?,
            },
            "dsm_msg" => DsmMsg {
                kind: field(o, "kind")?,
                from: field(o, "from")?,
            },
            "proto_tx" => ProtoTx {
                kind: field(o, "kind")?,
                bytes: field(o, "bytes")?,
                dur_ps: field(o, "dur_ps")?,
            },
            "metrics" => Metrics(MetricsSample::from_value(v)?),
            "cell_dropped" => CellDropped {
                vci: field(o, "vci")?,
                cell: field(o, "cell")?,
            },
            "crc_fail" => CrcFail {
                vci: field(o, "vci")?,
            },
            "retransmit_scheduled" => RetransmitScheduled {
                seq: field(o, "seq")?,
                rto_ps: field(o, "rto_ps")?,
            },
            "retransmit_fired" => RetransmitFired {
                seq: field(o, "seq")?,
                attempt: field(o, "attempt")?,
            },
            "ring_overflow" => RingOverflow {
                channel: field(o, "channel")?,
            },
            "span_open" => SpanOpen {
                span: field(o, "span")?,
                parent: field(o, "parent")?,
                class: field(o, "class")?,
                kind: field(o, "kind")?,
                src: field(o, "src")?,
                dst: field(o, "dst")?,
                bytes: field(o, "bytes")?,
            },
            "span_tx" => SpanTx {
                span: field(o, "span")?,
                host_dma_ps: field(o, "host_dma_ps")?,
                tx_queue_ps: field(o, "tx_queue_ps")?,
                wire_ps: field(o, "wire_ps")?,
            },
            "span_rx" => SpanRx {
                span: field(o, "span")?,
                rx_nic_ps: field(o, "rx_nic_ps")?,
                sar_ps: field(o, "sar_ps")?,
            },
            "span_close" => SpanClose {
                span: field(o, "span")?,
            },
            "util_node" => UtilNode {
                busy_ps: field(o, "busy_ps")?,
                ingress_ps: field(o, "ingress_ps")?,
                egress_ps: field(o, "egress_ps")?,
                ring_hw: field(o, "ring_hw")?,
                interval_ps: field(o, "interval_ps")?,
            },
            "util_queue" => UtilQueue {
                depth: field(o, "depth")?,
            },
            other => return Err(DeError::msg(format!("unknown trace event {other:?}"))),
        })
    }
}

/// One recorded event: virtual timestamp, originating node and payload.
/// `node` is [`NO_NODE`] for engine-level events.
///
/// Serializes flat: `{"t_ps": …, "node": …, "ev": …, …event fields…}` —
/// one self-describing JSON object per record (the JSONL line format).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TraceRecord {
    /// Virtual time in picoseconds.
    pub t_ps: u64,
    /// Originating node, or [`NO_NODE`].
    pub node: u32,
    /// The event.
    pub event: TraceEvent,
}

impl Serialize for TraceRecord {
    fn to_value(&self) -> serde::Value {
        let mut m = serde::Map::new();
        m.insert("t_ps".to_string(), self.t_ps.to_value());
        m.insert("node".to_string(), self.node.to_value());
        if let serde::Value::Object(ev) = self.event.to_value() {
            for (k, v) in ev.entries() {
                m.insert(k.clone(), v.clone());
            }
        }
        serde::Value::Object(m)
    }
}

impl Deserialize for TraceRecord {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        use serde::{DeError, Value};
        let o = v
            .as_object()
            .ok_or_else(|| DeError::msg("expected trace record object"))?;
        let t_ps =
            u64::from_value(o.get("t_ps").unwrap_or(&Value::Null)).map_err(|e| e.at("t_ps"))?;
        let node =
            u32::from_value(o.get("node").unwrap_or(&Value::Null)).map_err(|e| e.at("node"))?;
        let event = TraceEvent::from_value(v)?;
        Ok(TraceRecord { t_ps, node, event })
    }
}

/// End-of-run accounting for a trace: how much was recorded and how much
/// the bounded ring had to drop. Included in `RunReport` when tracing was
/// enabled.
///
/// The span counters make truncated traces *detectable*: an analysis that
/// sees `span_drops > 0` (span events evicted from the ring) or
/// `spans_opened != spans_closed` (lifecycles cut off by end-of-run or
/// loss) knows the span tree is incomplete instead of silently reporting
/// on the fragment that survived.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceSummary {
    /// Events offered to the sink.
    pub recorded: u64,
    /// Events dropped because the ring was full (oldest first).
    pub dropped: u64,
    /// Ring capacity in events.
    pub capacity: u64,
    /// Span-open events offered to the sink.
    pub spans_opened: u64,
    /// Span-close events offered to the sink.
    pub spans_closed: u64,
    /// Span events (open/tx/rx/close) evicted from the ring: the recorded
    /// span tree is truncated when this is nonzero.
    pub span_drops: u64,
}

struct Ring {
    cap: usize,
    events: VecDeque<TraceRecord>,
    recorded: u64,
    dropped: u64,
    spans_opened: u64,
    spans_closed: u64,
    span_drops: u64,
}

/// Shared state of an enabled sink: the engine-maintained "current virtual
/// time" and the bounded event ring.
pub struct TraceShared {
    now_ps: AtomicU64,
    // cni-lint: allow(host-thread) -- bounded ring behind the sink handle; ordering comes from event keys, not lock acquisition
    ring: Mutex<Ring>,
}

/// A handle to the trace buffer, cloned into every instrumented component.
///
/// The disabled variant is the default everywhere; its `emit` is a single
/// enum branch with no allocation, no formatting and no locking, so
/// figure-reproduction runs pay nothing for the instrumentation.
#[derive(Clone, Default)]
pub enum TraceSink {
    /// Tracing off: every hook is a no-op.
    #[default]
    Disabled,
    /// Tracing on: events go into the shared bounded ring.
    Enabled(Arc<TraceShared>),
}

impl TraceSink {
    /// An enabled sink whose ring holds at most `capacity` events (oldest
    /// are dropped once full).
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn ring(capacity: usize) -> TraceSink {
        assert!(capacity > 0, "trace ring needs capacity");
        TraceSink::Enabled(Arc::new(TraceShared {
            now_ps: AtomicU64::new(0),
            // cni-lint: allow(host-thread) -- constructor for the waived field above
            ring: Mutex::new(Ring {
                cap: capacity,
                events: VecDeque::with_capacity(capacity.min(1 << 16)),
                recorded: 0,
                dropped: 0,
                spans_opened: 0,
                spans_closed: 0,
                span_drops: 0,
            }),
        }))
    }

    /// Is this sink recording?
    #[inline]
    pub fn is_enabled(&self) -> bool {
        matches!(self, TraceSink::Enabled(_))
    }

    /// Advance the sink's notion of "current virtual time"; subsequent
    /// [`TraceSink::emit`] calls are stamped with it. The simulation's
    /// event loop calls this once per dispatched event.
    #[inline]
    pub fn set_now(&self, t_ps: u64) {
        if let TraceSink::Enabled(s) = self {
            s.now_ps.store(t_ps, Ordering::Relaxed);
        }
    }

    /// Record `event` for `node`, stamped with the current virtual time
    /// (see [`TraceSink::set_now`]). No-op when disabled.
    #[inline]
    pub fn emit(&self, node: u32, event: TraceEvent) {
        if let TraceSink::Enabled(s) = self {
            let t_ps = s.now_ps.load(Ordering::Relaxed);
            s.push(TraceRecord { t_ps, node, event });
        }
    }

    /// Record `event` for `node` with an explicit timestamp (components
    /// that resolve finer times than the dispatching event, like DMA
    /// completions, use this). No-op when disabled.
    #[inline]
    pub fn emit_at(&self, t_ps: u64, node: u32, event: TraceEvent) {
        if let TraceSink::Enabled(s) = self {
            s.push(TraceRecord { t_ps, node, event });
        }
    }

    /// Take all recorded events out of the ring (in recording order).
    /// Returns an empty vector for a disabled sink.
    pub fn drain(&self) -> Vec<TraceRecord> {
        match self {
            TraceSink::Disabled => Vec::new(),
            TraceSink::Enabled(s) => {
                let mut ring = s.ring.lock().expect("trace ring poisoned");
                ring.events.drain(..).collect()
            }
        }
    }

    /// Recording totals, or `None` for a disabled sink.
    pub fn summary(&self) -> Option<TraceSummary> {
        match self {
            TraceSink::Disabled => None,
            TraceSink::Enabled(s) => {
                let ring = s.ring.lock().expect("trace ring poisoned");
                Some(TraceSummary {
                    recorded: ring.recorded,
                    dropped: ring.dropped,
                    capacity: ring.cap as u64,
                    spans_opened: ring.spans_opened,
                    spans_closed: ring.spans_closed,
                    span_drops: ring.span_drops,
                })
            }
        }
    }
}

impl TraceShared {
    fn push(&self, rec: TraceRecord) {
        let is_span = |e: &TraceEvent| {
            matches!(
                e,
                TraceEvent::SpanOpen { .. }
                    | TraceEvent::SpanTx { .. }
                    | TraceEvent::SpanRx { .. }
                    | TraceEvent::SpanClose { .. }
            )
        };
        let mut ring = self.ring.lock().expect("trace ring poisoned");
        if ring.events.len() == ring.cap {
            if let Some(evicted) = ring.events.pop_front() {
                if is_span(&evicted.event) {
                    ring.span_drops += 1;
                }
            }
            ring.dropped += 1;
        }
        match rec.event {
            TraceEvent::SpanOpen { .. } => ring.spans_opened += 1,
            TraceEvent::SpanClose { .. } => ring.spans_closed += 1,
            _ => {}
        }
        ring.events.push_back(rec);
        ring.recorded += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_sink_records_nothing() {
        let sink = TraceSink::Disabled;
        sink.set_now(123);
        sink.emit(0, TraceEvent::Interrupt);
        sink.emit_at(5, 1, TraceEvent::Poll);
        assert!(!sink.is_enabled());
        assert!(sink.drain().is_empty());
        assert!(sink.summary().is_none());
    }

    #[test]
    fn enabled_sink_stamps_with_shared_now() {
        let sink = TraceSink::ring(8);
        sink.set_now(1_000);
        sink.emit(3, TraceEvent::MsgCacheHit { page: 7 });
        sink.set_now(2_000);
        sink.emit(3, TraceEvent::MsgCacheMiss { page: 8 });
        sink.emit_at(1_500, 3, TraceEvent::Interrupt);
        let recs = sink.drain();
        assert_eq!(recs.len(), 3);
        assert_eq!(recs[0].t_ps, 1_000);
        assert_eq!(recs[1].t_ps, 2_000);
        assert_eq!(recs[2].t_ps, 1_500);
        assert_eq!(recs[0].node, 3);
    }

    #[test]
    fn ring_bounds_and_counts_drops() {
        let sink = TraceSink::ring(2);
        for i in 0..5 {
            sink.emit_at(i, 0, TraceEvent::QueueDispatch { seq: i, pending: 0 });
        }
        let summary = sink.summary().unwrap();
        assert_eq!(summary.recorded, 5);
        assert_eq!(summary.dropped, 3);
        assert_eq!(summary.capacity, 2);
        let recs = sink.drain();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].t_ps, 3, "oldest events are dropped first");
    }

    #[test]
    fn clones_share_one_ring() {
        let a = TraceSink::ring(8);
        let b = a.clone();
        a.set_now(10);
        b.emit(0, TraceEvent::Poll);
        assert_eq!(a.drain().len(), 1);
    }

    #[test]
    fn records_serialize_flat_and_roundtrip() {
        let rec = TraceRecord {
            t_ps: 42,
            node: 1,
            event: TraceEvent::DmaToBoard {
                bytes: 2048,
                dur_ps: 9,
            },
        };
        let json = serde_json::to_string(&rec).unwrap();
        assert!(json.contains("\"ev\":\"dma_to_board\""), "{json}");
        assert!(json.contains("\"t_ps\":42"), "{json}");
        let back: TraceRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(back, rec);
    }

    #[test]
    fn tracks_cover_the_component_taxonomy() {
        let events = [
            TraceEvent::QueueDispatch { seq: 0, pending: 0 },
            TraceEvent::CothreadSwitch {
                cpu: 0,
                enter: true,
            },
            TraceEvent::DmaToBoard {
                bytes: 0,
                dur_ps: 0,
            },
            TraceEvent::MsgCacheHit { page: 0 },
            TraceEvent::Classify {
                cells: 1,
                matched: true,
            },
            TraceEvent::AdcEnqueue { channel: 0, len: 0 },
            TraceEvent::Interrupt,
            TraceEvent::DsmAcquire {
                lock: 0,
                local: true,
            },
            TraceEvent::ProtoTx {
                kind: 0xD5,
                bytes: 8,
                dur_ps: 1,
            },
            TraceEvent::Metrics(MetricsSample::default()),
            TraceEvent::CellDropped { vci: 0, cell: 0 },
            TraceEvent::SpanOpen {
                span: 1,
                parent: 0,
                class: SPAN_MSG,
                kind: 0xD0,
                src: 0,
                dst: 1,
                bytes: 16,
            },
            TraceEvent::UtilQueue { depth: 0 },
        ];
        let tracks: std::collections::BTreeSet<_> = events.iter().map(|e| e.track()).collect();
        assert_eq!(tracks.len(), 13);
    }

    #[test]
    fn span_and_util_events_roundtrip_through_jsonl() {
        let events = [
            TraceEvent::SpanOpen {
                span: 7,
                parent: 3,
                class: SPAN_FRAME,
                kind: 0xD5,
                src: 2,
                dst: 5,
                bytes: 2048,
            },
            TraceEvent::SpanTx {
                span: 7,
                host_dma_ps: 100,
                tx_queue_ps: 200,
                wire_ps: 300,
            },
            TraceEvent::SpanRx {
                span: 7,
                rx_nic_ps: 40,
                sar_ps: 60,
            },
            TraceEvent::SpanClose { span: 7 },
            TraceEvent::UtilNode {
                busy_ps: 9,
                ingress_ps: 8,
                egress_ps: 7,
                ring_hw: 2,
                interval_ps: 1_000,
            },
            TraceEvent::UtilQueue { depth: 13 },
        ];
        for (i, ev) in events.iter().enumerate() {
            let rec = TraceRecord {
                t_ps: i as u64,
                node: 4,
                event: *ev,
            };
            let json = serde_json::to_string(&rec).unwrap();
            let back: TraceRecord = serde_json::from_str(&json).unwrap();
            assert_eq!(back, rec);
        }
    }

    #[test]
    fn summary_counts_spans_and_span_drops() {
        let sink = TraceSink::ring(2);
        sink.emit_at(
            0,
            0,
            TraceEvent::SpanOpen {
                span: 1,
                parent: 0,
                class: SPAN_MSG,
                kind: 0xD0,
                src: 0,
                dst: 1,
                bytes: 16,
            },
        );
        sink.emit_at(1, 0, TraceEvent::SpanClose { span: 1 });
        // Overflows the 2-slot ring, evicting the span_open: the summary
        // must flag the truncation.
        sink.emit_at(2, 0, TraceEvent::Interrupt);
        let s = sink.summary().unwrap();
        assert_eq!(s.spans_opened, 1);
        assert_eq!(s.spans_closed, 1);
        assert_eq!(s.span_drops, 1);
        assert_eq!(s.dropped, 1);
    }

    #[test]
    fn fault_events_roundtrip_through_jsonl() {
        let events = [
            TraceEvent::CellDropped { vci: 6, cell: 12 },
            TraceEvent::CrcFail { vci: 6 },
            TraceEvent::RetransmitScheduled {
                seq: 9,
                rto_ps: 100_000,
            },
            TraceEvent::RetransmitFired { seq: 9, attempt: 2 },
            TraceEvent::RingOverflow { channel: 3 },
        ];
        for (i, ev) in events.iter().enumerate() {
            assert_eq!(ev.track(), "faults");
            let rec = TraceRecord {
                t_ps: i as u64,
                node: 2,
                event: *ev,
            };
            let json = serde_json::to_string(&rec).unwrap();
            let back: TraceRecord = serde_json::from_str(&json).unwrap();
            assert_eq!(back, rec);
        }
    }
}
