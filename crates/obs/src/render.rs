//! Canonical text rendering of a trace analysis.
//!
//! [`render_analysis`] is the single formatting path shared by
//! `cni-run --obs`, `cni-analyze` and the golden observability fixture:
//! every quantity it prints derives from integer picosecond accumulators,
//! so identically-seeded runs render byte-identical reports.

use crate::critpath::critical_path;
use crate::decomp::{decompose, KindStages};
use crate::span::SpanTree;
use crate::util::utilization;
use cni_trace::{TraceRecord, SPAN_ACK, SPAN_FRAME};
use std::fmt::Write as _;

/// Human name of a wire kind byte (protocol kinds, the application kind
/// and the reliability layer's ACK kind).
pub fn kind_label(kind: u8) -> &'static str {
    match kind {
        0xD0 => "acquire-req",
        0xD1 => "acquire-fwd",
        0xD2 => "acquire-grant",
        0xD3 => "barrier-arrive",
        0xD4 => "barrier-release",
        0xD5 => "page-req",
        0xD6 => "page-resp",
        0xD7 => "diff-req",
        0xD8 => "diff-resp",
        0xA0 => "app",
        0xF1 => "ack",
        _ => "unknown",
    }
}

fn class_label(class: u8) -> &'static str {
    match class {
        SPAN_FRAME => "frame",
        SPAN_ACK => "ack",
        _ => "msg",
    }
}

/// Mean nanoseconds per message: integer picosecond total over count.
fn mean_ns(total_ps: u64, count: u64) -> u64 {
    total_ps.checked_div(count).unwrap_or(0) / 1000
}

fn kind_row(out: &mut String, k: &KindStages) {
    let m = |ps| mean_ns(ps, k.count);
    let _ = writeln!(
        out,
        "{:<15} {:>6} {:>9} {:>9} {:>9} {:>9} {:>10} {:>9} | {:>9} {:>9} {:>9}",
        kind_label(k.kind),
        k.count,
        m(k.stages.host_dma_ps),
        m(k.stages.tx_queue_ps),
        m(k.stages.wire_ps),
        m(k.stages.rx_nic_ps),
        m(k.stages.reassembly_ps),
        m(k.stages.handler_ps),
        m(k.e2e_ps),
        k.p50_ns,
        k.p99_ns,
    );
}

/// Render the full analysis of a drained trace: span accounting, stage
/// decomposition per kind and per channel, the critical path of the last
/// barrier interval and the utilization profile. Pure and deterministic:
/// byte-identical output for byte-identical record sequences.
pub fn render_analysis(records: &[TraceRecord]) -> String {
    let tree = SpanTree::build(records);
    let rep = decompose(&tree);
    let mut out = String::new();
    let _ = writeln!(out, "== cni-analyze ==");
    let _ = writeln!(
        out,
        "records {}  spans {} opened / {} closed / {} unclosed / {} orphaned",
        records.len(),
        tree.opened,
        tree.closed,
        tree.unclosed(),
        tree.orphans,
    );
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "-- stage decomposition by kind (mean ns per message) --"
    );
    let _ = writeln!(
        out,
        "{:<15} {:>6} {:>9} {:>9} {:>9} {:>9} {:>10} {:>9} | {:>9} {:>9} {:>9}",
        "kind",
        "count",
        "host-dma",
        "tx-queue",
        "wire",
        "rx-nic",
        "reassembly",
        "handler",
        "e2e",
        "p50(ns)",
        "p99(ns)",
    );
    for k in &rep.kinds {
        kind_row(&mut out, k);
    }
    let total_e2e: u64 = rep.kinds.iter().map(|k| k.e2e_ps).sum();
    let total_stages: u64 = rep.kinds.iter().map(|k| k.stages.sum_ps()).sum();
    let _ = writeln!(
        out,
        "stage sums tile end-to-end: {} ns across {} messages (residual {} ps)",
        total_e2e / 1000,
        rep.messages,
        total_e2e.abs_diff(total_stages),
    );
    let _ = writeln!(out);
    let _ = writeln!(out, "-- latency by channel --");
    let _ = writeln!(
        out,
        "{:<9} {:>6} {:>9} {:>9} {:>9}",
        "channel", "count", "mean(ns)", "p50(ns)", "p99(ns)"
    );
    for c in &rep.channels {
        let _ = writeln!(
            out,
            "{:<9} {:>6} {:>9} {:>9} {:>9}",
            format!("{}->{}", c.src, c.dst),
            c.count,
            mean_ns(c.e2e_ps, c.count),
            c.p50_ns,
            c.p99_ns,
        );
    }
    let _ = writeln!(out);
    match critical_path(records, &tree) {
        Some(cp) => {
            let epoch = match cp.epoch {
                Some(e) => format!("barrier epoch {e}"),
                None => "no barrier".to_string(),
            };
            let _ = writeln!(
                out,
                "-- critical path ({epoch}, {} links, {} ns) --",
                cp.links.len(),
                cp.total_ps / 1000,
            );
            for (i, l) in cp.links.iter().enumerate() {
                let _ = writeln!(
                    out,
                    "{:>3}. span {:<6} {:<5} {:<15} {}->{} open {} ns close {} ns dominant {} ({} ns)",
                    i + 1,
                    l.span,
                    class_label(l.class),
                    kind_label(l.kind),
                    l.src,
                    l.dst,
                    l.open_ps / 1000,
                    l.close_ps / 1000,
                    l.dominant,
                    l.dominant_ps / 1000,
                );
            }
        }
        None => {
            let _ = writeln!(out, "-- critical path: no closed spans --");
        }
    }
    let _ = writeln!(out);
    let util = utilization(records);
    if util.nodes.is_empty() && util.queue_samples == 0 {
        let _ = writeln!(out, "-- utilization: no samples --");
    } else {
        let _ = writeln!(out, "-- utilization --");
        let _ = writeln!(
            out,
            "{:<5} {:>8} {:>7} {:>9} {:>8} {:>8}",
            "node", "samples", "nic%", "ingress%", "egress%", "ring-hw"
        );
        for n in &util.nodes {
            let _ = writeln!(
                out,
                "{:<5} {:>8} {:>7.2} {:>9.2} {:>8.2} {:>8}",
                n.node,
                n.samples,
                n.nic_pct(),
                n.ingress_pct(),
                n.egress_pct(),
                n.ring_hw,
            );
        }
        let _ = writeln!(
            out,
            "event-queue depth max {} over {} samples",
            util.queue_depth_max, util.queue_samples
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cni_trace::{TraceEvent, TraceSink, SPAN_MSG};

    #[test]
    fn render_is_deterministic_and_reports_tiling() {
        let sink = TraceSink::ring(64);
        sink.emit_at(
            0,
            0,
            TraceEvent::SpanOpen {
                span: 1,
                parent: 0,
                class: SPAN_MSG,
                kind: 0xD4,
                src: 0,
                dst: 1,
                bytes: 64,
            },
        );
        sink.emit_at(
            800,
            0,
            TraceEvent::SpanTx {
                span: 1,
                host_dma_ps: 100,
                tx_queue_ps: 200,
                wire_ps: 500,
            },
        );
        sink.emit_at(1_000, 1, TraceEvent::SpanClose { span: 1 });
        let recs = sink.drain();
        let a = render_analysis(&recs);
        let b = render_analysis(&recs);
        assert_eq!(a, b);
        assert!(a.contains("residual 0 ps"), "{a}");
        assert!(a.contains("barrier-release"), "{a}");
        assert!(a.contains("-- critical path (no barrier, 1 links"), "{a}");
    }

    #[test]
    fn empty_trace_renders_placeholders() {
        let s = render_analysis(&[]);
        assert!(s.contains("no closed spans"), "{s}");
        assert!(s.contains("no samples"), "{s}");
    }
}
