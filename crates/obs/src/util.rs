//! Run-wide utilization profiling from `UtilNode` / `UtilQueue` gauges.

use cni_trace::{TraceEvent, TraceRecord};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Accumulated utilization for one node over all sampled intervals.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct NodeUtil {
    /// The node.
    pub node: u32,
    /// Total NIC-processor busy time (picoseconds).
    pub busy_ps: u64,
    /// Total ingress-link (node → switch) occupancy.
    pub ingress_ps: u64,
    /// Total egress-link (switch → node) occupancy.
    pub egress_ps: u64,
    /// Total sampled virtual time.
    pub sampled_ps: u64,
    /// Receive-ring high-water mark across all intervals (slots).
    pub ring_hw: u32,
    /// Number of samples.
    pub samples: u64,
}

impl NodeUtil {
    /// Busy fraction of a component in percent of sampled time.
    fn pct(&self, v: u64) -> f64 {
        if self.sampled_ps == 0 {
            0.0
        } else {
            v as f64 * 100.0 / self.sampled_ps as f64
        }
    }

    /// NIC-processor busy fraction (percent of sampled time).
    pub fn nic_pct(&self) -> f64 {
        self.pct(self.busy_ps)
    }

    /// Ingress-link occupancy (percent of sampled time).
    pub fn ingress_pct(&self) -> f64 {
        self.pct(self.ingress_ps)
    }

    /// Egress-link occupancy (percent of sampled time).
    pub fn egress_pct(&self) -> f64 {
        self.pct(self.egress_ps)
    }
}

/// Run-wide utilization: per-node gauges plus the engine's event-queue
/// depth profile.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct UtilSummary {
    /// Per-node accumulations, ordered by node id.
    pub nodes: Vec<NodeUtil>,
    /// Highest event-queue depth observed at any sample.
    pub queue_depth_max: u32,
    /// Number of event-queue depth samples.
    pub queue_samples: u64,
}

/// Fold the trace's utilization gauges into a run-wide summary.
pub fn utilization(records: &[TraceRecord]) -> UtilSummary {
    let mut nodes: BTreeMap<u32, NodeUtil> = BTreeMap::new();
    let mut queue_depth_max = 0u32;
    let mut queue_samples = 0u64;
    for rec in records {
        match rec.event {
            TraceEvent::UtilNode {
                busy_ps,
                ingress_ps,
                egress_ps,
                ring_hw,
                interval_ps,
            } => {
                let n = nodes.entry(rec.node).or_insert(NodeUtil {
                    node: rec.node,
                    ..NodeUtil::default()
                });
                n.busy_ps += busy_ps;
                n.ingress_ps += ingress_ps;
                n.egress_ps += egress_ps;
                n.sampled_ps += interval_ps;
                n.ring_hw = n.ring_hw.max(ring_hw);
                n.samples += 1;
            }
            TraceEvent::UtilQueue { depth } => {
                queue_depth_max = queue_depth_max.max(depth);
                queue_samples += 1;
            }
            _ => {}
        }
    }
    UtilSummary {
        nodes: nodes.into_values().collect(),
        queue_depth_max,
        queue_samples,
    }
}

/// Render the summary as flamegraph-compatible folded stacks: one
/// `frame;frame weight` line per component, weighted in picoseconds of
/// busy time. Feed the output to `flamegraph.pl` (or any collapsed-stack
/// consumer) for a visual where frame width is virtual-time occupancy.
pub fn folded_stacks(util: &UtilSummary) -> String {
    let mut out = String::new();
    for n in &util.nodes {
        let idle = n
            .sampled_ps
            .saturating_sub(n.busy_ps.max(n.ingress_ps).max(n.egress_ps));
        let _ = writeln!(out, "node{};nic-processor {}", n.node, n.busy_ps);
        let _ = writeln!(out, "node{};wire;ingress {}", n.node, n.ingress_ps);
        let _ = writeln!(out, "node{};wire;egress {}", n.node, n.egress_ps);
        let _ = writeln!(out, "node{};idle {}", n.node, idle);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cni_trace::{TraceSink, NO_NODE};

    #[test]
    fn accumulates_deltas_and_high_water_marks() {
        let sink = TraceSink::ring(64);
        for (t, busy, hw) in [(100, 40u64, 2u32), (200, 60, 5)] {
            sink.emit_at(
                t,
                0,
                TraceEvent::UtilNode {
                    busy_ps: busy,
                    ingress_ps: busy / 2,
                    egress_ps: busy / 4,
                    ring_hw: hw,
                    interval_ps: 100,
                },
            );
        }
        sink.emit_at(100, NO_NODE, TraceEvent::UtilQueue { depth: 9 });
        sink.emit_at(200, NO_NODE, TraceEvent::UtilQueue { depth: 4 });
        let u = utilization(&sink.drain());
        assert_eq!(u.nodes.len(), 1);
        let n = &u.nodes[0];
        assert_eq!(n.busy_ps, 100);
        assert_eq!(n.sampled_ps, 200);
        assert_eq!(n.ring_hw, 5);
        assert_eq!(n.samples, 2);
        assert_eq!(n.nic_pct(), 50.0);
        assert_eq!(u.queue_depth_max, 9);
        assert_eq!(u.queue_samples, 2);
        let folded = folded_stacks(&u);
        assert!(folded.contains("node0;nic-processor 100\n"), "{folded}");
        assert!(folded.contains("node0;idle 100\n"), "{folded}");
    }

    #[test]
    fn empty_trace_is_an_empty_summary() {
        let u = utilization(&[]);
        assert!(u.nodes.is_empty());
        assert_eq!(u.queue_depth_max, 0);
        assert_eq!(folded_stacks(&u), "");
    }
}
