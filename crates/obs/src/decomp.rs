//! Per-message stage decomposition: where each message kind's latency
//! goes, totalled per kind and per (src, dst) channel.

use crate::span::SpanTree;
use cni_sim::stats::Histogram;
use cni_trace::SPAN_MSG;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Stage-duration totals (picoseconds). The six stages tile the
/// end-to-end latency of the spans they aggregate: `handler_ps` is
/// defined as the unexplained remainder, so
/// `sum_ps() == e2e` holds exactly per span and therefore per total.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StageTotals {
    /// Host-side send work (kernel entry / ADC enqueue, cache flush).
    pub host_dma_ps: u64,
    /// NIC transmit queue: descriptor fetch, Message-Cache lookup,
    /// host→board DMA, first-cell segmentation.
    pub tx_queue_ps: u64,
    /// Wire occupancy: ingress link, switch, egress link, propagation.
    pub wire_ps: u64,
    /// Wait for the receiving NIC processor.
    pub rx_nic_ps: u64,
    /// AAL5 reassembly (SAR).
    pub reassembly_ps: u64,
    /// Handler remainder: PATHFINDER classify + AIH execution on the
    /// CNI, interrupt + host protocol processing on the standard NIC,
    /// plus delivery DMA.
    pub handler_ps: u64,
}

impl StageTotals {
    /// Sum of all six stages — equals the end-to-end total by
    /// construction.
    pub fn sum_ps(&self) -> u64 {
        self.host_dma_ps
            + self.tx_queue_ps
            + self.wire_ps
            + self.rx_nic_ps
            + self.reassembly_ps
            + self.handler_ps
    }
}

/// Stage decomposition for one message kind.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct KindStages {
    /// Wire kind byte (`0xD0..=0xD8` protocol, `0xA0` application).
    pub kind: u8,
    /// Closed message spans of this kind.
    pub count: u64,
    /// Stage totals across those spans.
    pub stages: StageTotals,
    /// Total end-to-end time (== `stages.sum_ps()`).
    pub e2e_ps: u64,
    /// Median end-to-end latency in nanoseconds (interpolated within
    /// power-of-two histogram buckets; deterministic).
    pub p50_ns: u64,
    /// 99th-percentile end-to-end latency in nanoseconds.
    pub p99_ns: u64,
}

/// End-to-end latency summary for one (src, dst) channel.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ChannelLatency {
    /// Sending node.
    pub src: u32,
    /// Receiving node.
    pub dst: u32,
    /// Closed message spans on this channel.
    pub count: u64,
    /// Total end-to-end time.
    pub e2e_ps: u64,
    /// Median end-to-end latency (nanoseconds).
    pub p50_ns: u64,
    /// 99th-percentile end-to-end latency (nanoseconds).
    pub p99_ns: u64,
}

/// The full stage-decomposition report, embedded in `RunReport` (v5+)
/// when a run executes with `--obs`.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ObsReport {
    /// Closed message-class spans the decomposition covers.
    pub messages: u64,
    /// Spans opened but never closed (any class) — non-zero only when a
    /// trace was truncated or a run aborted mid-flight.
    pub unclosed: u64,
    /// Per-kind decomposition, ordered by kind byte.
    pub kinds: Vec<KindStages>,
    /// Per-channel latency, ordered by (src, dst).
    pub channels: Vec<ChannelLatency>,
}

/// Decompose every closed message-class span of `tree` into its stage
/// table. Frame and ACK spans (reliable-layer wire attempts) carry the
/// transport detail of lossy runs but are lifecycle children — the
/// message span still records the end-to-end story, so only message
/// spans aggregate here.
pub fn decompose(tree: &SpanTree) -> ObsReport {
    let mut kinds: BTreeMap<u8, (KindStages, Histogram)> = BTreeMap::new();
    let mut chans: BTreeMap<(u32, u32), (ChannelLatency, Histogram)> = BTreeMap::new();
    let mut messages = 0u64;
    for s in tree.spans.values() {
        if s.class != SPAN_MSG {
            continue;
        }
        let (Some(e2e), Some(handler)) = (s.e2e_ps(), s.handler_ps()) else {
            continue;
        };
        messages += 1;
        let (k, kh) = kinds.entry(s.kind).or_insert_with(|| {
            (
                KindStages {
                    kind: s.kind,
                    ..KindStages::default()
                },
                Histogram::new(),
            )
        });
        k.count += 1;
        k.e2e_ps += e2e;
        k.stages.host_dma_ps += s.host_dma_ps;
        k.stages.tx_queue_ps += s.tx_queue_ps;
        k.stages.wire_ps += s.wire_ps;
        k.stages.rx_nic_ps += s.rx_nic_ps;
        k.stages.reassembly_ps += s.sar_ps;
        k.stages.handler_ps += handler;
        kh.record(e2e / 1000);
        let (c, ch) = chans.entry((s.src, s.dst)).or_insert_with(|| {
            (
                ChannelLatency {
                    src: s.src,
                    dst: s.dst,
                    ..ChannelLatency::default()
                },
                Histogram::new(),
            )
        });
        c.count += 1;
        c.e2e_ps += e2e;
        ch.record(e2e / 1000);
    }
    ObsReport {
        messages,
        unclosed: tree.unclosed(),
        kinds: kinds
            .into_values()
            .map(|(mut k, h)| {
                k.p50_ns = h.percentile(50.0) as u64;
                k.p99_ns = h.percentile(99.0) as u64;
                k
            })
            .collect(),
        channels: chans
            .into_values()
            .map(|(mut c, h)| {
                c.p50_ns = h.percentile(50.0) as u64;
                c.p99_ns = h.percentile(99.0) as u64;
                c
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::SpanTree;
    use cni_trace::{TraceEvent, TraceSink, SPAN_FRAME};

    fn message(sink: &TraceSink, span: u64, kind: u8, src: u32, dst: u32, t0: u64) {
        sink.emit_at(
            t0,
            src,
            TraceEvent::SpanOpen {
                span,
                parent: 0,
                class: SPAN_MSG,
                kind,
                src,
                dst,
                bytes: 64,
            },
        );
        sink.emit_at(
            t0 + 700,
            src,
            TraceEvent::SpanTx {
                span,
                host_dma_ps: 100,
                tx_queue_ps: 200,
                wire_ps: 400,
            },
        );
        sink.emit_at(
            t0 + 800,
            dst,
            TraceEvent::SpanRx {
                span,
                rx_nic_ps: 40,
                sar_ps: 60,
            },
        );
        sink.emit_at(t0 + 1000, dst, TraceEvent::SpanClose { span });
    }

    #[test]
    fn stage_sums_tile_end_to_end_exactly() {
        let sink = TraceSink::ring(256);
        message(&sink, 1, 0xD5, 0, 1, 0);
        message(&sink, 2, 0xD5, 0, 1, 5_000);
        message(&sink, 3, 0xD6, 1, 0, 9_000);
        // A frame-class child must not double-count into the tables.
        sink.emit_at(
            9_100,
            1,
            TraceEvent::SpanOpen {
                span: 4,
                parent: 3,
                class: SPAN_FRAME,
                kind: 0xD6,
                src: 1,
                dst: 0,
                bytes: 64,
            },
        );
        let rep = decompose(&SpanTree::build(&sink.drain()));
        assert_eq!(rep.messages, 3);
        assert_eq!(rep.unclosed, 1);
        assert_eq!(rep.kinds.len(), 2);
        for k in &rep.kinds {
            assert_eq!(k.stages.sum_ps(), k.e2e_ps, "kind {:#x}", k.kind);
        }
        let d5 = rep.kinds.iter().find(|k| k.kind == 0xD5).unwrap();
        assert_eq!(d5.count, 2);
        assert_eq!(d5.stages.handler_ps, 2 * 200);
        assert_eq!(rep.channels.len(), 2);
        assert_eq!((rep.channels[0].src, rep.channels[0].dst), (0, 1));
    }
}
