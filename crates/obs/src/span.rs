//! Span-tree reconstruction from a trace's compact span records.

use cni_trace::{TraceEvent, TraceRecord};
use std::collections::BTreeMap;

/// One reconstructed span: a message, wire frame or acknowledgement
/// lifecycle with its recorded stage durations.
#[derive(Clone, Debug, Default)]
pub struct SpanInfo {
    /// Causing span, or 0 for a root.
    pub parent: u64,
    /// [`cni_trace::SPAN_MSG`], [`cni_trace::SPAN_FRAME`] or
    /// [`cni_trace::SPAN_ACK`].
    pub class: u8,
    /// Wire kind byte.
    pub kind: u8,
    /// Sending node.
    pub src: u32,
    /// Receiving node.
    pub dst: u32,
    /// Payload bytes.
    pub bytes: u32,
    /// Open timestamp (picoseconds).
    pub open_ps: u64,
    /// Close timestamp; `None` while the span is unclosed.
    pub close_ps: Option<u64>,
    /// Host-side send work before the NIC takes over.
    pub host_dma_ps: u64,
    /// NIC transmit-queue occupancy (descriptor, Message Cache, DMA).
    pub tx_queue_ps: u64,
    /// First bit on the wire to last cell arrival.
    pub wire_ps: u64,
    /// Wait for the receiving NIC processor.
    pub rx_nic_ps: u64,
    /// AAL5 reassembly time.
    pub sar_ps: u64,
}

impl SpanInfo {
    /// End-to-end open-to-close time; `None` while unclosed.
    pub fn e2e_ps(&self) -> Option<u64> {
        self.close_ps.map(|c| c.saturating_sub(self.open_ps))
    }

    /// Sum of the recorded (non-handler) stage durations.
    pub fn recorded_stages_ps(&self) -> u64 {
        self.host_dma_ps + self.tx_queue_ps + self.wire_ps + self.rx_nic_ps + self.sar_ps
    }

    /// The handler stage: whatever part of the end-to-end time the
    /// recorded transport stages do not explain (AIH execution, host
    /// interrupt + protocol processing, delivery DMA). Defined as the
    /// remainder so the six stages tile the end-to-end latency exactly;
    /// saturates at zero if a trace was truncated mid-span.
    pub fn handler_ps(&self) -> Option<u64> {
        self.e2e_ps()
            .map(|e| e.saturating_sub(self.recorded_stages_ps()))
    }
}

/// All spans of one trace, keyed by id, plus open/close tallies.
#[derive(Clone, Debug, Default)]
pub struct SpanTree {
    /// Spans by id (`BTreeMap` keeps iteration deterministic).
    pub spans: BTreeMap<u64, SpanInfo>,
    /// `SpanOpen` records seen.
    pub opened: u64,
    /// `SpanClose` records that matched an open span.
    pub closed: u64,
    /// Stage or close records whose `SpanOpen` was evicted from a
    /// bounded trace ring before the drain.
    pub orphans: u64,
}

impl SpanTree {
    /// Reconstruct the span tree from a drained record sequence.
    pub fn build(records: &[TraceRecord]) -> SpanTree {
        let mut tree = SpanTree::default();
        for rec in records {
            match rec.event {
                TraceEvent::SpanOpen {
                    span,
                    parent,
                    class,
                    kind,
                    src,
                    dst,
                    bytes,
                } => {
                    tree.opened += 1;
                    tree.spans.insert(
                        span,
                        SpanInfo {
                            parent,
                            class,
                            kind,
                            src,
                            dst,
                            bytes,
                            open_ps: rec.t_ps,
                            ..SpanInfo::default()
                        },
                    );
                }
                TraceEvent::SpanTx {
                    span,
                    host_dma_ps,
                    tx_queue_ps,
                    wire_ps,
                } => match tree.spans.get_mut(&span) {
                    Some(s) => {
                        s.host_dma_ps = host_dma_ps;
                        s.tx_queue_ps = tx_queue_ps;
                        s.wire_ps = wire_ps;
                    }
                    None => tree.orphans += 1,
                },
                TraceEvent::SpanRx {
                    span,
                    rx_nic_ps,
                    sar_ps,
                } => match tree.spans.get_mut(&span) {
                    Some(s) => {
                        s.rx_nic_ps = rx_nic_ps;
                        s.sar_ps = sar_ps;
                    }
                    None => tree.orphans += 1,
                },
                TraceEvent::SpanClose { span } => match tree.spans.get_mut(&span) {
                    Some(s) => {
                        s.close_ps = Some(rec.t_ps);
                        tree.closed += 1;
                    }
                    None => tree.orphans += 1,
                },
                _ => {}
            }
        }
        tree
    }

    /// Spans opened but never closed in this trace.
    pub fn unclosed(&self) -> u64 {
        self.spans.values().filter(|s| s.close_ps.is_none()).count() as u64
    }

    /// The causal chain from `span` up to its root, returned root-first.
    /// Cycle-safe (a corrupt parent link terminates the walk) and robust
    /// to parents evicted from a bounded ring.
    pub fn chain_to_root(&self, span: u64) -> Vec<u64> {
        let mut chain = Vec::new();
        let mut cur = span;
        while cur != 0 {
            if chain.contains(&cur) {
                break;
            }
            chain.push(cur);
            cur = self.spans.get(&cur).map(|s| s.parent).unwrap_or(0);
        }
        chain.reverse();
        chain
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cni_trace::{TraceSink, SPAN_ACK, SPAN_FRAME, SPAN_MSG};

    fn open(sink: &TraceSink, t: u64, span: u64, parent: u64, class: u8) {
        sink.emit_at(
            t,
            0,
            TraceEvent::SpanOpen {
                span,
                parent,
                class,
                kind: 0xD0,
                src: 0,
                dst: 1,
                bytes: 32,
            },
        );
    }

    #[test]
    fn build_links_children_and_computes_remainder() {
        let sink = TraceSink::ring(64);
        open(&sink, 100, 1, 0, SPAN_MSG);
        sink.emit_at(
            400,
            0,
            TraceEvent::SpanTx {
                span: 1,
                host_dma_ps: 50,
                tx_queue_ps: 100,
                wire_ps: 150,
            },
        );
        sink.emit_at(
            500,
            1,
            TraceEvent::SpanRx {
                span: 1,
                rx_nic_ps: 30,
                sar_ps: 70,
            },
        );
        sink.emit_at(600, 1, TraceEvent::SpanClose { span: 1 });
        open(&sink, 450, 2, 1, SPAN_FRAME);
        open(&sink, 470, 3, 2, SPAN_ACK);
        let tree = SpanTree::build(&sink.drain());
        assert_eq!(tree.opened, 3);
        assert_eq!(tree.closed, 1);
        assert_eq!(tree.unclosed(), 2);
        let s = &tree.spans[&1];
        assert_eq!(s.e2e_ps(), Some(500));
        assert_eq!(s.recorded_stages_ps(), 400);
        assert_eq!(s.handler_ps(), Some(100));
        assert_eq!(tree.chain_to_root(3), vec![1, 2, 3]);
    }

    #[test]
    fn orphan_records_are_counted_not_fatal() {
        let sink = TraceSink::ring(64);
        sink.emit_at(10, 0, TraceEvent::SpanClose { span: 99 });
        sink.emit_at(
            20,
            0,
            TraceEvent::SpanRx {
                span: 98,
                rx_nic_ps: 1,
                sar_ps: 2,
            },
        );
        let tree = SpanTree::build(&sink.drain());
        assert_eq!(tree.orphans, 2);
        assert_eq!(tree.opened, 0);
    }
}
