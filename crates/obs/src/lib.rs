//! Observability analysis over CNI simulation traces.
//!
//! The engine emits four compact span records per message lifecycle
//! ([`cni_trace::TraceEvent::SpanOpen`] / `SpanTx` / `SpanRx` /
//! `SpanClose`) plus per-interval utilization gauges (`UtilNode`,
//! `UtilQueue`). This crate consumes a finished trace — in memory or as a
//! JSONL file — and turns it into:
//!
//! * a **span tree** linking every PDU's lifecycle to its cause
//!   ([`SpanTree`]): retransmitted frames and acknowledgements are
//!   children of the originating send, protocol replies are children of
//!   the request that provoked them;
//! * a **per-message stage decomposition** ([`ObsReport`]): host DMA /
//!   transmit queue / wire / receive NIC / reassembly / handler time,
//!   totalled per message kind and per (src, dst) channel with
//!   percentile tables — the stage sums tile the end-to-end latency
//!   exactly (the handler stage is defined as the remainder);
//! * a **critical-path extraction** ([`CriticalPath`]): the causal chain
//!   that closed a barrier interval, walked root-first through the span
//!   DAG;
//! * a **utilization profile** ([`UtilSummary`]): link occupancy,
//!   NIC-processor busy fraction, event-queue depth and receive-ring
//!   high-water marks, with a flamegraph-compatible folded-stack export.
//!
//! Every analysis is a pure function of the record sequence, and the
//! record sequence is deterministic per seed, so [`render_analysis`]
//! output is byte-identical across reruns — the property the golden
//! observability fixture pins.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod critpath;
mod decomp;
mod render;
mod span;
mod util;

pub use critpath::{critical_path, CriticalPath, PathLink};
pub use decomp::{decompose, ChannelLatency, KindStages, ObsReport, StageTotals};
pub use render::{kind_label, render_analysis};
pub use span::{SpanInfo, SpanTree};
pub use util::{folded_stacks, utilization, NodeUtil, UtilSummary};

use cni_trace::TraceRecord;

/// Parse a newline-delimited JSON trace (the `--trace-format jsonl`
/// output) back into records. Blank lines are skipped; the first
/// malformed line aborts with its 1-based line number.
pub fn read_jsonl(text: &str) -> Result<Vec<TraceRecord>, String> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let rec: TraceRecord =
            serde_json::from_str(line).map_err(|e| format!("trace line {}: {e}", i + 1))?;
        out.push(rec);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cni_trace::{TraceEvent, TraceSink, SPAN_MSG};

    #[test]
    fn jsonl_round_trip_matches_in_memory_analysis() {
        let sink = TraceSink::ring(64);
        sink.emit_at(
            0,
            0,
            TraceEvent::SpanOpen {
                span: 1,
                parent: 0,
                class: SPAN_MSG,
                kind: 0xD5,
                src: 0,
                dst: 1,
                bytes: 64,
            },
        );
        sink.emit_at(
            900,
            0,
            TraceEvent::SpanTx {
                span: 1,
                host_dma_ps: 100,
                tx_queue_ps: 200,
                wire_ps: 600,
            },
        );
        sink.emit_at(
            1_000,
            1,
            TraceEvent::SpanRx {
                span: 1,
                rx_nic_ps: 40,
                sar_ps: 60,
            },
        );
        sink.emit_at(1_500, 1, TraceEvent::SpanClose { span: 1 });
        let recs = sink.drain();
        let mut buf = Vec::new();
        cni_trace::export::write_jsonl(&mut buf, &recs).unwrap();
        let parsed = read_jsonl(std::str::from_utf8(&buf).unwrap()).unwrap();
        assert_eq!(render_analysis(&recs), render_analysis(&parsed));
    }

    #[test]
    fn read_jsonl_reports_the_bad_line() {
        let err = read_jsonl("\n{not json}\n").unwrap_err();
        assert!(err.starts_with("trace line 2:"), "{err}");
    }
}
