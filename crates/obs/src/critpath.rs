//! Critical-path extraction: the causal chain that closed a barrier
//! interval.

use crate::span::SpanTree;
use cni_trace::{TraceEvent, TraceRecord};

/// One link of a critical path (root-first order).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PathLink {
    /// The span id.
    pub span: u64,
    /// Span class ([`cni_trace::SPAN_MSG`] / `SPAN_FRAME` / `SPAN_ACK`).
    pub class: u8,
    /// Wire kind byte.
    pub kind: u8,
    /// Sending node.
    pub src: u32,
    /// Receiving node.
    pub dst: u32,
    /// Open timestamp (picoseconds).
    pub open_ps: u64,
    /// Close timestamp; equals `open_ps` for an unclosed link (only the
    /// terminal anchor is guaranteed closed).
    pub close_ps: u64,
    /// Name of the dominating stage of this link.
    pub dominant: &'static str,
    /// Duration of that stage (picoseconds).
    pub dominant_ps: u64,
}

/// The dominating causal chain of one barrier interval.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CriticalPath {
    /// Barrier epoch the anchor release belongs to, when barrier-arrival
    /// records are present in the trace.
    pub epoch: Option<u32>,
    /// The chain, root cause first; the last link is the anchor span.
    pub links: Vec<PathLink>,
    /// Root open to anchor close (picoseconds).
    pub total_ps: u64,
}

/// Find the span whose parent walk is the interval's critical path: the
/// **last-closing barrier-release** (kind `0xD4`) span — the message
/// whose delivery let the final processor leave the barrier. Traces
/// without a barrier release (e.g. a pure message-passing run) fall back
/// to the last-closing span of any kind. Ties break on the higher span
/// id; both orders are deterministic per seed.
pub fn critical_path(records: &[TraceRecord], tree: &SpanTree) -> Option<CriticalPath> {
    let anchor = tree
        .spans
        .iter()
        .filter(|(_, s)| s.kind == 0xD4 && s.close_ps.is_some())
        .max_by_key(|(id, s)| (s.close_ps, **id))
        .or_else(|| {
            tree.spans
                .iter()
                .filter(|(_, s)| s.close_ps.is_some())
                .max_by_key(|(id, s)| (s.close_ps, **id))
        })?;
    let (&anchor_id, anchor_span) = anchor;
    let anchor_close = anchor_span.close_ps.unwrap_or(anchor_span.open_ps);
    // The epoch whose release this is: the latest barrier arrival at or
    // before the anchor's close.
    let epoch = records
        .iter()
        .filter(|r| r.t_ps <= anchor_close)
        .filter_map(|r| match r.event {
            TraceEvent::DsmBarrier { epoch } => Some(epoch),
            _ => None,
        })
        .max();
    let links: Vec<PathLink> = tree
        .chain_to_root(anchor_id)
        .into_iter()
        .filter_map(|id| {
            let s = tree.spans.get(&id)?;
            let handler = s.handler_ps().unwrap_or(0);
            let stages = [
                ("host-dma", s.host_dma_ps),
                ("tx-queue", s.tx_queue_ps),
                ("wire", s.wire_ps),
                ("rx-nic", s.rx_nic_ps),
                ("reassembly", s.sar_ps),
                ("handler", handler),
            ];
            // First-listed wins ties: earlier pipeline stages are the
            // more actionable blame.
            let &(dominant, dominant_ps) =
                stages.iter().max_by_key(|(_, v)| *v).unwrap_or(&stages[0]);
            Some(PathLink {
                span: id,
                class: s.class,
                kind: s.kind,
                src: s.src,
                dst: s.dst,
                open_ps: s.open_ps,
                close_ps: s.close_ps.unwrap_or(s.open_ps),
                dominant,
                dominant_ps,
            })
        })
        .collect();
    let root_open = links.first().map(|l| l.open_ps)?;
    Some(CriticalPath {
        epoch,
        total_ps: anchor_close.saturating_sub(root_open),
        links,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::SpanTree;
    use cni_trace::{TraceSink, SPAN_MSG};

    fn span(sink: &TraceSink, span: u64, parent: u64, kind: u8, open: u64, close: u64) {
        sink.emit_at(
            open,
            0,
            TraceEvent::SpanOpen {
                span,
                parent,
                class: SPAN_MSG,
                kind,
                src: 0,
                dst: 1,
                bytes: 64,
            },
        );
        sink.emit_at(
            close,
            1,
            TraceEvent::SpanTx {
                span,
                host_dma_ps: 10,
                tx_queue_ps: 5,
                wire_ps: (close - open) / 2,
            },
        );
        sink.emit_at(close, 1, TraceEvent::SpanClose { span });
    }

    #[test]
    fn anchors_on_last_barrier_release_and_walks_to_root() {
        let sink = TraceSink::ring(256);
        // Chain: acquire-req (1) -> barrier-arrive (2) -> barrier-release (3).
        span(&sink, 1, 0, 0xD0, 100, 400);
        span(&sink, 2, 1, 0xD3, 450, 800);
        span(&sink, 3, 2, 0xD4, 850, 1_200);
        // A later non-barrier message must not steal the anchor.
        span(&sink, 4, 0, 0xD5, 1_300, 2_000);
        sink.emit_at(900, 1, TraceEvent::DsmBarrier { epoch: 7 });
        let recs = sink.drain();
        let cp = critical_path(&recs, &SpanTree::build(&recs)).unwrap();
        assert_eq!(cp.epoch, Some(7));
        assert_eq!(
            cp.links.iter().map(|l| l.span).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
        assert_eq!(cp.total_ps, 1_200 - 100);
        assert_eq!(cp.links[0].dominant, "wire");
    }

    #[test]
    fn falls_back_to_last_close_without_a_barrier() {
        let sink = TraceSink::ring(64);
        span(&sink, 1, 0, 0xA0, 0, 500);
        let recs = sink.drain();
        let cp = critical_path(&recs, &SpanTree::build(&recs)).unwrap();
        assert_eq!(cp.epoch, None);
        assert_eq!(cp.links.len(), 1);
        assert_eq!(cp.links[0].span, 1);
    }

    #[test]
    fn empty_trace_has_no_path() {
        assert!(critical_path(&[], &SpanTree::default()).is_none());
    }
}
