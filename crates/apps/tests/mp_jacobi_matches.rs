//! The message-passing Jacobi must compute exactly the DSM reference, on
//! both NIC personalities — the paper's paradigm-generality claim made
//! executable.

use cni::{Config, World};
use cni_apps::mp_jacobi::{self, MpJacobiParams};

#[test]
fn mp_jacobi_matches_reference_on_both_nics() {
    let params = MpJacobiParams { n: 24, iters: 6 };
    let expect = mp_jacobi::reference_grid(params);
    for procs in [1usize, 2, 4] {
        for std_nic in [false, true] {
            let cfg = if std_nic {
                Config::paper_default().with_procs(procs).standard()
            } else {
                Config::paper_default().with_procs(procs)
            };
            let mut world = World::new(cfg);
            let (grid, _) = mp_jacobi::run(&mut world, params);
            for (k, (&g, &e)) in grid.iter().zip(&expect).enumerate() {
                assert!(
                    (g - e).abs() < 1e-12,
                    "std={std_nic} procs={procs}: grid[{k}] = {g}, want {e}"
                );
            }
        }
    }
}

#[test]
fn mp_jacobi_boundary_buffers_hit_the_message_cache() {
    // Fixed send buffers + snooped rewrites = transmit-cache hits from the
    // second exchange of each buffer on.
    let params = MpJacobiParams { n: 32, iters: 12 };
    let mut world = World::new(Config::paper_default().with_procs(4));
    let (_, report) = mp_jacobi::run(&mut world, params);
    assert!(
        report.hit_ratio() > 0.5,
        "expected warm boundary buffers, hit ratio {:.2}",
        report.hit_ratio()
    );
}

#[test]
fn mp_jacobi_cni_beats_standard() {
    let params = MpJacobiParams { n: 64, iters: 10 };
    let mut cw = World::new(Config::paper_default().with_procs(4));
    let (_, cni) = mp_jacobi::run(&mut cw, params);
    let mut sw = World::new(Config::paper_default().with_procs(4).standard());
    let (_, std_) = mp_jacobi::run(&mut sw, params);
    assert!(
        cni.wall < std_.wall,
        "CNI {} !< standard {}",
        cni.wall,
        std_.wall
    );
}
