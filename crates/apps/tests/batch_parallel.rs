//! The batch engine's core guarantee, end to end: running a sweep on a
//! multi-worker pool must produce, for every job, a [`cni::RunReport`]
//! whose JSON serialisation is *byte-identical* to the one a sequential
//! (single-worker) pool produces for the same [`cni_batch::RunSpec`].
//! Host-side timing lives in the [`cni_batch::JobRecord`] envelope, never
//! in the report, so this holds exactly — not approximately.

use cni::Config;
use cni_apps::experiments::{run_app, App};
use cni_batch::{BatchReport, Pool, RunSpec};

/// A mixed four-job sweep: two applications, both NIC personalities,
/// distinct seeds — enough heterogeneity that completion order on the
/// parallel pool genuinely differs from submission order.
fn sweep() -> Vec<RunSpec<App>> {
    let jacobi = App::Jacobi { n: 64, iters: 4 };
    let water = App::Water {
        molecules: 64,
        steps: 1,
    };
    let base = Config::paper_default().with_procs(4);
    let mut specs = vec![
        RunSpec::new("jacobi-cni", base.cni(), jacobi),
        RunSpec::new("jacobi-std", base.standard(), jacobi),
        RunSpec::new("water-cni", base.cni(), water),
        RunSpec::new("water-std", base.standard(), water),
    ];
    for (k, s) in specs.iter_mut().enumerate() {
        s.seed = 0x5EED + k as u64;
    }
    specs
}

fn run_with(workers: usize) -> BatchReport {
    Pool::new(workers).quiet().run_batch(sweep(), |_, spec| {
        run_app(spec.effective_config(), spec.workload)
    })
}

#[test]
fn parallel_batch_reports_are_byte_identical_to_sequential() {
    let seq = run_with(1);
    let par = run_with(4);
    assert_eq!(seq.jobs.len(), 4);
    assert_eq!(par.jobs.len(), 4);
    assert_eq!(par.completed(), 4, "all parallel jobs must succeed");
    for (s, p) in seq.jobs.iter().zip(&par.jobs) {
        assert_eq!(s.index, p.index);
        assert_eq!(s.label, p.label);
        let sj = serde_json::to_string(s.report.as_ref().expect("sequential report"))
            .expect("serialize");
        let pj =
            serde_json::to_string(p.report.as_ref().expect("parallel report")).expect("serialize");
        assert_eq!(
            sj.as_bytes(),
            pj.as_bytes(),
            "job {} ({}) diverged between 1 and 4 workers",
            s.index,
            s.label
        );
    }
}

#[test]
fn batch_report_orders_jobs_by_index_and_merges_latency() {
    let report = run_with(4);
    let indices: Vec<u64> = report.jobs.iter().map(|j| j.index).collect();
    assert_eq!(indices, vec![0, 1, 2, 3]);
    // Merged latency equals the bucket-wise sum over per-job histograms.
    let total: u64 = report
        .jobs
        .iter()
        .flat_map(|j| &j.report.as_ref().unwrap().latency_hist)
        .map(|kh| kh.hist.count())
        .sum();
    let merged: u64 = report.merged_latency.iter().map(|kh| kh.hist.count()).sum();
    assert_eq!(total, merged);
    assert!(merged > 0, "real runs must record latency samples");
}

#[test]
fn a_panicking_job_is_isolated_and_reported() {
    let mut specs = sweep();
    specs.truncate(2);
    // procs = 0 violates the world's configuration contract and panics
    // inside the run; the pool must convert that into a failed JobRecord
    // while the sibling job completes normally.
    specs[1].config.procs = 0;
    let report = Pool::new(2).quiet().run_batch(specs, |_, spec| {
        run_app(spec.effective_config(), spec.workload)
    });
    assert_eq!(report.jobs.len(), 2);
    assert_eq!(report.completed(), 1);
    assert_eq!(report.failures().len(), 1);
    let failed = &report.failures()[0];
    assert_eq!(failed.index, 1);
    assert!(failed.report.is_none());
    assert!(failed.error.is_some());
}
