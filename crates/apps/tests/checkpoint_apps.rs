//! Application-level checkpoint/restore contract:
//!
//! * a Jacobi run on 8 processors resumed from **any** on-disk snapshot
//!   finishes with a `RunReport` byte-identical to the uninterrupted
//!   run's — lossless and under 5% cell loss;
//! * torn snapshot files (truncated at every 64-byte boundary) are
//!   rejected with a diagnostic, never a panic, both through the library
//!   and through `cni-run --resume` (which must exit non-zero);
//! * forking applies a new fault plan to the parent's saved prefix.

use cni::{Config, FaultPlan, RunReport};
use cni_apps::checkpoint::{newest_snapshot, read_snapshot, run_app_checkpointed};
use cni_apps::experiments::{run_app, App};
use std::path::{Path, PathBuf};
use std::process::Command;

const APP: App = App::Jacobi { n: 16, iters: 3 };

fn jacobi8(plan: FaultPlan) -> Config {
    Config::paper_default().with_procs(8).with_faults(plan)
}

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cni-ck-apps-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn json(r: &RunReport) -> String {
    serde_json::to_string(r).expect("report serializes")
}

/// Golden identity: every snapshot the checkpointed run wrote resumes to
/// the uninterrupted run's exact report bytes.
fn identity_for(cfg: Config, dir: &Path) {
    let baseline = json(&run_app(cfg, APP));
    let ck = run_app_checkpointed(cfg, APP, 80, dir).expect("checkpointed run");
    assert_eq!(
        json(&ck.report),
        baseline,
        "checkpointing perturbed the run"
    );
    assert!(
        ck.snapshots.len() >= 4,
        "expected at least 4 snapshots, got {}",
        ck.snapshots.len()
    );
    for path in &ck.snapshots {
        let snap = read_snapshot(path).expect("snapshot reads back");
        let resumed = snap
            .resume()
            .unwrap_or_else(|e| panic!("resume from {} failed:\n{e}", path.display()));
        assert_eq!(
            json(&resumed),
            baseline,
            "resume from {} diverged",
            path.display()
        );
    }
}

#[test]
fn jacobi8_lossless_identity() {
    let dir = tmp_dir("lossless");
    identity_for(jacobi8(FaultPlan::none()), &dir);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn jacobi64_fat_tree_identity() {
    // The multi-switch fabric state (leaf/spine switches, trunk links)
    // and NIC-resident collective counters must checkpoint and resume
    // bit-identically too.
    let dir = tmp_dir("fat-tree");
    let cfg = Config::paper_default()
        .with_fat_tree(4, 16, 16)
        .with_procs(64)
        .with_collectives();
    identity_for(cfg, &dir);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn jacobi8_five_percent_loss_identity() {
    let mut plan = FaultPlan::none();
    plan.drop_prob = 0.05;
    let dir = tmp_dir("lossy");
    identity_for(jacobi8(plan), &dir);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn torn_writes_at_every_64_byte_boundary_are_rejected() {
    let dir = tmp_dir("torn");
    let ck =
        run_app_checkpointed(jacobi8(FaultPlan::none()), APP, 80, &dir).expect("checkpointed run");
    let victim = ck.snapshots.last().expect("at least one snapshot");
    let whole = std::fs::read(victim).expect("snapshot readable");
    let torn_path = dir.join("torn.cnisnap");
    let mut cut = 0;
    while cut < whole.len() {
        std::fs::write(&torn_path, &whole[..cut]).unwrap();
        let err = match read_snapshot(&torn_path) {
            Err(e) => e,
            Ok(_) => panic!("truncation to {cut} of {} bytes parsed", whole.len()),
        };
        assert!(err.starts_with("error:"), "not a diagnostic: {err}");
        assert!(err.contains("torn.cnisnap"), "no path in: {err}");
        cut += 64;
    }
    // The intact file still reads and resumes.
    assert!(read_snapshot(victim).is_ok());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn fork_reuses_prefix_under_new_fault_plan() {
    let dir = tmp_dir("fork");
    let ck =
        run_app_checkpointed(jacobi8(FaultPlan::none()), APP, 80, &dir).expect("checkpointed run");
    let snap = read_snapshot(&ck.snapshots[0]).expect("snapshot reads back");
    let mut plan = FaultPlan::none();
    plan.drop_prob = 0.02;
    let child = snap
        .resume_with(snap.config.with_faults(plan))
        .expect("lossless parent forks into a lossy child");
    assert!(
        child.faults.cells_dropped > 0,
        "forked child never saw its injected losses"
    );
    // Unchanged-config fork is exactly resume.
    let same = snap.resume().expect("identity fork");
    assert_eq!(json(&same), json(&ck.report));
    let _ = std::fs::remove_dir_all(&dir);
}

/// `cni-run --resume` on a valid snapshot reproduces the golden report on
/// stdout; on a corrupt snapshot it exits non-zero with a rustc-style
/// diagnostic on stderr.
#[test]
fn cli_resume_round_trip_and_corrupt_rejection() {
    let exe = env!("CARGO_BIN_EXE_cni-run");
    let dir = tmp_dir("cli");
    std::fs::create_dir_all(&dir).unwrap();

    let golden = Command::new(exe)
        .args([
            "--app", "jacobi", "--n", "16", "--iters", "3", "--procs", "8", "--json",
        ])
        .output()
        .expect("golden run");
    assert!(golden.status.success());

    let ck_dir = dir.join("ck");
    let ck = Command::new(exe)
        .args([
            "--app", "jacobi", "--n", "16", "--iters", "3", "--procs", "8", "--json",
        ])
        .args(["--checkpoint-every", "80", "--checkpoint-dir"])
        .arg(&ck_dir)
        .output()
        .expect("checkpointed run");
    assert!(ck.status.success());
    assert_eq!(
        String::from_utf8_lossy(&ck.stdout),
        String::from_utf8_lossy(&golden.stdout),
        "checkpointing changed the report"
    );

    let snap = newest_snapshot(&ck_dir).expect("snapshots were written");
    let resumed = Command::new(exe)
        .arg("--resume")
        .arg(&snap)
        .arg("--json")
        .output()
        .expect("resume run");
    assert!(resumed.status.success());
    assert_eq!(
        String::from_utf8_lossy(&resumed.stdout),
        String::from_utf8_lossy(&golden.stdout),
        "CLI resume diverged from the golden report"
    );

    // Corrupt the snapshot: flip one payload byte. CRC must catch it.
    let mut bytes = std::fs::read(&snap).unwrap();
    let n = bytes.len();
    bytes[n / 2] ^= 0x20;
    let bad = dir.join("bad.cnisnap");
    std::fs::write(&bad, &bytes).unwrap();
    let rejected = Command::new(exe)
        .arg("--resume")
        .arg(&bad)
        .output()
        .expect("resume of corrupt snapshot");
    assert!(
        !rejected.status.success(),
        "corrupt snapshot must exit non-zero"
    );
    let stderr = String::from_utf8_lossy(&rejected.stderr);
    assert!(stderr.contains("error:"), "stderr: {stderr}");
    assert!(stderr.contains("help:"), "stderr: {stderr}");

    let _ = std::fs::remove_dir_all(&dir);
}
