//! The parallel applications, run through the full timed simulation,
//! must compute the same answers as their sequential references — on both
//! NIC personalities, at several processor counts. This is the
//! reproduction's strongest end-to-end correctness gate: application →
//! DSM protocol → NIC → ATM → back.

use cni::{Config, NicKind, World};
use cni_apps::{cholesky, jacobi, sparse, water};
use cni_dsm::access;

fn configs(procs: usize) -> Vec<Config> {
    vec![
        Config::paper_default().with_procs(procs),
        Config::paper_default().with_procs(procs).standard(),
    ]
}

/// Read a shared f64 array out of the cluster after a run: any valid copy
/// of each page is current once every processor has passed the final
/// barrier.
fn collect_f64(world: &World, base: cni::VAddr, len: usize) -> Vec<f64> {
    let page_bytes = world.config().page_bytes;
    (0..len)
        .map(|k| {
            let addr = base.add((k * 8) as u64);
            let page = addr.page(page_bytes);
            let word = addr.word(page_bytes);
            for p in 0..world.config().procs {
                if let Some(h) = world.space(p).try_page(page) {
                    if h.flags.state() != access::INVALID {
                        return f64::from_bits(h.frame.load(word));
                    }
                }
            }
            panic!("no valid copy of word {k}");
        })
        .collect()
}

#[test]
fn jacobi_matches_reference_cni_and_standard() {
    let params = jacobi::JacobiParams {
        n: 24,
        iters: 6,
        verify: true,
    };
    let expect = jacobi::reference(params.n, params.iters);
    for procs in [1usize, 2, 4] {
        for cfg in configs(procs) {
            let kind = cfg.nic_kind;
            let mut world = World::new(cfg);
            let (layout, progs) = jacobi::programs(&mut world, params);
            let _ = world.run(progs);
            let grid = jacobi::result_grid(layout, params.iters);
            let got = collect_f64(&world, grid, params.n * params.n);
            for (k, (&g, &e)) in got.iter().zip(&expect).enumerate() {
                assert!(
                    (g - e).abs() < 1e-12,
                    "{kind:?}/{procs}p: grid[{k}] = {g}, want {e}"
                );
            }
        }
    }
}

#[test]
fn water_matches_reference_cni_and_standard() {
    let params = water::WaterParams {
        molecules: 27,
        steps: 2,
        verify: true,
    };
    let expect = water::reference(params);
    for procs in [1usize, 3] {
        for cfg in configs(procs) {
            let kind = cfg.nic_kind;
            let mut world = World::new(cfg);
            let (layout, progs) = water::programs(&mut world, params);
            let _ = world.run(progs);
            let got: Vec<f64> = (0..params.molecules)
                .flat_map(|mol| (0..3).map(move |d| (mol, d)))
                .map(|(mol, d)| collect_f64(&world, layout.pos_at(mol, d), 1)[0])
                .collect();
            for (k, (&g, &e)) in got.iter().zip(&expect).enumerate() {
                // Force accumulation order differs between sequential and
                // lock-ordered parallel execution; allow fp slack.
                assert!(
                    (g - e).abs() < 1e-9 * e.abs().max(1.0),
                    "{kind:?}/{procs}p: pos[{k}] = {g}, want {e}"
                );
            }
        }
    }
}

#[test]
fn cholesky_matches_reference_cni_and_standard() {
    let matrix = cholesky::CholeskyMatrix::Small { n: 48, band: 5 };
    let a = matrix.build(11);
    let sym = sparse::SymbolicFactor::analyze(&a);
    let expect = sparse::reference_cholesky(&a, &sym);
    for procs in [1usize, 2, 4] {
        for cfg in configs(procs) {
            let kind = cfg.nic_kind;
            let mut world = World::new(cfg);
            let (layout, sym2, progs) = cholesky::programs(&mut world, matrix, 11, true);
            assert_eq!(sym2.total_slots, sym.total_slots);
            let _ = world.run(progs);
            let got = cholesky::collect_factor(&world, &sym, layout);
            for (s, (&g, &e)) in got.iter().zip(&expect).enumerate() {
                assert!(
                    (g - e).abs() < 1e-6 * e.abs().max(1.0),
                    "{kind:?}/{procs}p: L[{s}] = {g}, want {e}"
                );
            }
        }
    }
}

#[test]
fn jacobi_parallel_runs_are_deterministic() {
    let params = jacobi::JacobiParams {
        n: 16,
        iters: 4,
        verify: false,
    };
    let run_once = || {
        let mut world = World::new(Config::paper_default().with_procs(4));
        let (_, progs) = jacobi::programs(&mut world, params);
        world.run(progs).wall
    };
    assert_eq!(run_once(), run_once());
}

#[test]
fn cni_outperforms_standard_on_each_application() {
    // The paper's headline: CNI ≥ standard across the granularity
    // spectrum (at small scale here; the benches sweep the real sizes).
    let jacobi_wall = |kind: NicKind| {
        let cfg = match kind {
            NicKind::Cni => Config::paper_default().with_procs(4),
            NicKind::Standard => Config::paper_default().with_procs(4).standard(),
        };
        let mut world = World::new(cfg);
        let (_, progs) = jacobi::programs(
            &mut world,
            jacobi::JacobiParams {
                n: 32,
                iters: 5,
                verify: false,
            },
        );
        world.run(progs).wall
    };
    assert!(jacobi_wall(NicKind::Cni) < jacobi_wall(NicKind::Standard));

    let water_wall = |kind: NicKind| {
        let cfg = match kind {
            NicKind::Cni => Config::paper_default().with_procs(4),
            NicKind::Standard => Config::paper_default().with_procs(4).standard(),
        };
        let mut world = World::new(cfg);
        let (_, progs) = water::programs(
            &mut world,
            water::WaterParams {
                molecules: 64,
                steps: 1,
                verify: false,
            },
        );
        world.run(progs).wall
    };
    assert!(water_wall(NicKind::Cni) < water_wall(NicKind::Standard));

    let chol_wall = |kind: NicKind| {
        let cfg = match kind {
            NicKind::Cni => Config::paper_default().with_procs(4),
            NicKind::Standard => Config::paper_default().with_procs(4).standard(),
        };
        let mut world = World::new(cfg);
        let (_, _, progs) = cholesky::programs(
            &mut world,
            cholesky::CholeskyMatrix::Small { n: 96, band: 6 },
            3,
            false,
        );
        world.run(progs).wall
    };
    assert!(chol_wall(NicKind::Cni) < chol_wall(NicKind::Standard));
}
