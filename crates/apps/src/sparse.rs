//! Sparse symmetric positive-definite matrices and symbolic factorisation.
//!
//! The paper factorises the Harwell–Boeing matrices **bcsstk14**
//! (n = 1806) and **bcsstk15** (n = 3948). Those files are not
//! redistributable here, so [`SparseSpd::bcsstk14_like`] /
//! [`SparseSpd::bcsstk15_like`] generate seeded synthetic structural-
//! engineering-style patterns with the same order and a comparable
//! nonzero profile (banded coupling plus sparse long-range members,
//! diagonally dominant values). What matters to the reproduction is the
//! *sharing pattern* — columns packed many-per-page, migrating between
//! processors under column locks — which these patterns preserve.
//!
//! [`SymbolicFactor`] computes the fill-in structure via the elimination
//! tree (Liu's algorithm), giving every processor the read-only metadata
//! the parallel numeric factorisation needs.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A sparse SPD matrix in column form (strict lower triangle + diagonal).
#[derive(Clone, Debug)]
pub struct SparseSpd {
    /// Dimension.
    pub n: usize,
    /// Strictly-below-diagonal row indices per column, ascending.
    pub rows: Vec<Vec<usize>>,
    /// Values matching `rows`.
    pub vals: Vec<Vec<f64>>,
    /// Diagonal entries.
    pub diag: Vec<f64>,
}

impl SparseSpd {
    /// A banded + random-coupling SPD matrix.
    ///
    /// * `n` — dimension;
    /// * `band` — nominal half bandwidth (each column couples to a random
    ///   subset of the next `band` rows);
    /// * `density` — fraction of the band populated;
    /// * `long_range` — number of additional longer-distance couplings per
    ///   ~32 columns (truss members crossing the band).
    pub fn generate(n: usize, band: usize, density: f64, long_range: usize, seed: u64) -> Self {
        assert!(n >= 2 && band >= 1);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rows: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut vals: Vec<Vec<f64>> = vec![Vec::new(); n];
        for j in 0..n {
            for i in (j + 1)..(j + 1 + band).min(n) {
                if rng.gen::<f64>() < density {
                    rows[j].push(i);
                    vals[j].push(-(0.1 + 0.9 * rng.gen::<f64>()));
                }
            }
            if long_range > 0 && j % 32 == 0 {
                for _ in 0..long_range {
                    let span = band * 4 + rng.gen_range(0..band * 8);
                    let i = j + 1 + span;
                    if i < n && !rows[j].contains(&i) {
                        let pos = rows[j].partition_point(|&r| r < i);
                        rows[j].insert(pos, i);
                        vals[j].insert(pos, -(0.1 + 0.4 * rng.gen::<f64>()));
                    }
                }
            }
        }
        // Diagonal dominance ⟹ SPD. Row sums include the symmetric upper
        // part, i.e. |column j| entries appear in rows i>j as well.
        let mut offdiag_sum = vec![0.0f64; n];
        for j in 0..n {
            for (k, &i) in rows[j].iter().enumerate() {
                let a = vals[j][k].abs();
                offdiag_sum[j] += a;
                offdiag_sum[i] += a;
            }
        }
        let diag = (0..n).map(|j| 1.0 + 1.5 * offdiag_sum[j]).collect();
        SparseSpd {
            n,
            rows,
            vals,
            diag,
        }
    }

    /// A finite-element-style SPD matrix: a `rows × cols` structural mesh
    /// with couplings up to Chebyshev distance `reach`, permuted by
    /// recursive nested dissection. Nested dissection is what gives the
    /// elimination tree the bushy shape real structural matrices have —
    /// a banded ordering degenerates to a chain with no elimination-tree
    /// parallelism at all.
    pub fn fe_mesh_nd(rows: usize, cols: usize, reach: usize, density: f64, seed: u64) -> Self {
        let n = rows * cols;
        assert!(n >= 4);
        let mut rng = StdRng::seed_from_u64(seed);
        // Nested-dissection permutation: old (grid) index -> new index.
        let mut perm = vec![usize::MAX; n];
        let mut next = 0usize;
        dissect(&mut perm, &mut next, rows, cols, 0, rows, 0, cols);
        debug_assert_eq!(next, n);
        // Build couplings in grid space, map through the permutation.
        let mut rows_out: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut vals_out: Vec<Vec<f64>> = vec![Vec::new(); n];
        let r = reach as isize;
        for gr in 0..rows as isize {
            for gc in 0..cols as isize {
                let u = perm[(gr * cols as isize + gc) as usize];
                for dr in -r..=r {
                    for dc in -r..=r {
                        if dr == 0 && dc == 0 {
                            continue;
                        }
                        let (nr, nc) = (gr + dr, gc + dc);
                        if nr < 0 || nr >= rows as isize || nc < 0 || nc >= cols as isize {
                            continue;
                        }
                        let v = perm[(nr * cols as isize + nc) as usize];
                        // Handle each undirected edge once, as (col, row)
                        // in the permuted lower triangle.
                        if v <= u {
                            continue;
                        }
                        if rng.gen::<f64>() >= density {
                            continue;
                        }
                        let (j, i) = (u, v);
                        let pos = rows_out[j].partition_point(|&x| x < i);
                        rows_out[j].insert(pos, i);
                        vals_out[j].insert(pos, -(0.1 + 0.9 * rng.gen::<f64>()));
                    }
                }
            }
        }
        let mut offdiag_sum = vec![0.0f64; n];
        for j in 0..n {
            for (k, &i) in rows_out[j].iter().enumerate() {
                let a = vals_out[j][k].abs();
                offdiag_sum[j] += a;
                offdiag_sum[i] += a;
            }
        }
        let diag = (0..n).map(|j| 1.0 + 1.5 * offdiag_sum[j]).collect();
        SparseSpd {
            n,
            rows: rows_out,
            vals: vals_out,
            diag,
        }
    }

    /// A synthetic stand-in for Harwell–Boeing **bcsstk14** (n = 1806,
    /// roof of the Omni Coliseum): a 43 × 42 structural mesh (exactly
    /// 1806 unknowns) with comparable sparsity and a realistic bushy
    /// elimination tree.
    pub fn bcsstk14_like(seed: u64) -> Self {
        Self::fe_mesh_nd(43, 42, 2, 0.9, seed)
    }

    /// A synthetic stand-in for **bcsstk15** (n = 3948, offshore platform
    /// module): a 47 × 84 mesh (exactly 3948 unknowns).
    pub fn bcsstk15_like(seed: u64) -> Self {
        Self::fe_mesh_nd(47, 84, 2, 0.9, seed)
    }

    /// Structural nonzeros in the strict lower triangle.
    pub fn nnz_lower(&self) -> usize {
        self.rows.iter().map(Vec::len).sum()
    }
}

/// Recursive nested dissection of a sub-grid `[r0, r1) × [c0, c1)`:
/// number both halves first, then the separator line, so separator
/// columns are eliminated last and the elimination tree branches.
#[allow(clippy::too_many_arguments)]
fn dissect(
    perm: &mut [usize],
    next: &mut usize,
    grid_rows: usize,
    grid_cols: usize,
    r0: usize,
    r1: usize,
    c0: usize,
    c1: usize,
) {
    let _ = grid_rows; // kept for symmetry/debug assertions

    let h = r1 - r0;
    let w = c1 - c0;
    if h == 0 || w == 0 {
        return;
    }
    if h <= 3 && w <= 3 {
        for r in r0..r1 {
            for c in c0..c1 {
                perm[r * grid_cols + c] = *next;
                *next += 1;
            }
        }
        return;
    }
    // Separators are two cells wide so that couplings of Chebyshev reach 2
    // cannot jump across them — otherwise the "independent" halves stay
    // coupled and the elimination tree degenerates toward a chain.
    if h >= w {
        let mid = r0 + h / 2;
        let sep_hi = (mid + 2).min(r1);
        dissect(perm, next, grid_rows, grid_cols, r0, mid, c0, c1);
        dissect(perm, next, grid_rows, grid_cols, sep_hi, r1, c0, c1);
        for r in mid..sep_hi {
            for c in c0..c1 {
                perm[r * grid_cols + c] = *next;
                *next += 1;
            }
        }
    } else {
        let mid = c0 + w / 2;
        let sep_hi = (mid + 2).min(c1);
        dissect(perm, next, grid_rows, grid_cols, r0, r1, c0, mid);
        dissect(perm, next, grid_rows, grid_cols, r0, r1, sep_hi, c1);
        for r in r0..r1 {
            for c in mid..sep_hi {
                perm[r * grid_cols + c] = *next;
                *next += 1;
            }
        }
    }
}

/// The fill-in structure of the Cholesky factor.
#[derive(Clone, Debug)]
pub struct SymbolicFactor {
    /// Dimension.
    pub n: usize,
    /// Below-diagonal rows of each factor column (with fill), ascending.
    pub structs: Vec<Vec<usize>>,
    /// Elimination-tree parent of each column (`usize::MAX` for roots).
    pub parent: Vec<usize>,
    /// Packed-slot offset of each column (slot 0 of a column is its
    /// diagonal, followed by its below-diagonal entries).
    pub offsets: Vec<usize>,
    /// Total packed slots.
    pub total_slots: usize,
}

impl SymbolicFactor {
    /// Symbolic factorisation of `a` via elimination-tree merging.
    pub fn analyze(a: &SparseSpd) -> Self {
        let n = a.n;
        let mut structs: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut parent = vec![usize::MAX; n];
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
        for j in 0..n {
            // Start from A's structure.
            let mut s: Vec<usize> = a.rows[j].clone();
            // Merge children's structures (minus entries ≤ j).
            for &c in &children[j] {
                for &i in &structs[c] {
                    if i > j {
                        s.push(i);
                    }
                }
            }
            s.sort_unstable();
            s.dedup();
            if let Some(&first) = s.first() {
                parent[j] = first;
                children[first].push(j);
            }
            structs[j] = s;
        }
        let mut offsets = Vec::with_capacity(n);
        let mut total = 0usize;
        for st in &structs {
            offsets.push(total);
            total += 1 + st.len();
        }
        SymbolicFactor {
            n,
            structs,
            parent,
            offsets,
            total_slots: total,
        }
    }

    /// Factor nonzeros including the diagonal.
    pub fn nnz(&self) -> usize {
        self.total_slots
    }

    /// Packed slot of the diagonal of column `j`.
    pub fn diag_slot(&self, j: usize) -> usize {
        self.offsets[j]
    }

    /// Packed slot of `L(i, j)`; `i` must be in `structs[j]`.
    pub fn slot(&self, i: usize, j: usize) -> usize {
        let pos = self.structs[j]
            .binary_search(&i)
            .unwrap_or_else(|_| panic!("row {i} not in struct of column {j}"));
        self.offsets[j] + 1 + pos
    }

    /// How many earlier columns update column `j` (the fan-out readiness
    /// counters).
    pub fn update_counts(&self) -> Vec<u32> {
        let mut counts = vec![0u32; self.n];
        for j in 0..self.n {
            for &i in &self.structs[j] {
                counts[i] += 1;
            }
        }
        counts
    }

    /// Partition the columns into *fundamental supernodes*: maximal runs of
    /// consecutive columns where each column's structure is the next column
    /// plus the next column's structure (`struct(j) = {j+1} ∪ struct(j+1)`),
    /// capped at `max_size` columns for parallelism. These are the "sets of
    /// columns called supernodes" the paper's Cholesky allocates through
    /// the bag of tasks. Returns `(start, end)` half-open column ranges.
    pub fn supernodes(&self, max_size: usize) -> Vec<(usize, usize)> {
        assert!(max_size >= 1);
        let mut out = Vec::new();
        let mut start = 0;
        while start < self.n {
            let mut end = start + 1;
            while end < self.n
                && end - start < max_size
                && self.parent[end - 1] == end
                && self.structs[end - 1].len() == self.structs[end].len() + 1
            {
                end += 1;
            }
            out.push((start, end));
            start = end;
        }
        out
    }

    /// Amalgamated panels: fundamental supernodes greedily merged with
    /// their neighbours up to `max_size` columns. Banded matrices produce
    /// few true fundamental supernodes (sliding-window structures never
    /// nest), so practical codes amalgamate — trading a little extra
    /// synchronisation coarseness for far fewer tasks and locks. The
    /// fan-out algorithm is correct for *any* consecutive partition of the
    /// columns.
    pub fn amalgamated_panels(&self, max_size: usize) -> Vec<(usize, usize)> {
        let sn = self.supernodes(max_size);
        let mut out: Vec<(usize, usize)> = Vec::new();
        for (lo, hi) in sn {
            match out.last_mut() {
                // Merge only when the previous panel chains into this one
                // through the elimination tree (its last column's parent is
                // our first column). Merging unrelated neighbours — e.g.
                // two independent nested-dissection subtrees that happen to
                // be consecutive — would create false dependencies and
                // serialise the whole factorisation.
                Some((plo, phi))
                    if hi - *plo <= max_size && *phi == lo && self.parent[*phi - 1] == lo =>
                {
                    *phi = hi;
                }
                _ => out.push((lo, hi)),
            }
        }
        out
    }
}

/// Dense-panel sequential Cholesky over the symbolic structure; reference
/// for the parallel factorisation. Returns packed factor values aligned
/// with [`SymbolicFactor::offsets`].
pub fn reference_cholesky(a: &SparseSpd, sym: &SymbolicFactor) -> Vec<f64> {
    let n = a.n;
    let mut l = vec![0.0f64; sym.total_slots];
    // Scatter A into the packed factor.
    for j in 0..n {
        l[sym.diag_slot(j)] = a.diag[j];
        for (k, &i) in a.rows[j].iter().enumerate() {
            l[sym.slot(i, j)] = a.vals[j][k];
        }
    }
    // Right-looking (fan-out order, matching the parallel algorithm).
    for j in 0..n {
        let dj = l[sym.diag_slot(j)];
        assert!(dj > 0.0, "matrix not positive definite at column {j}");
        let root = dj.sqrt();
        l[sym.diag_slot(j)] = root;
        let st = sym.structs[j].clone();
        for &i in &st {
            l[sym.slot(i, j)] /= root;
        }
        // cmod every later column in struct(j).
        for (ki, &k) in st.iter().enumerate() {
            let ljk = l[sym.slot(k, j)];
            l[sym.diag_slot(k)] -= ljk * ljk;
            for &i in &st[ki + 1..] {
                let lij = l[sym.slot(i, j)];
                let s = sym.slot(i, k);
                l[s] -= lij * ljk;
            }
        }
    }
    l
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SparseSpd {
        SparseSpd::generate(64, 5, 0.8, 2, 42)
    }

    #[test]
    fn generation_is_deterministic() {
        let a = small();
        let b = small();
        assert_eq!(a.rows, b.rows);
        assert_eq!(a.diag, b.diag);
    }

    #[test]
    fn structure_is_sorted_strictly_lower() {
        let a = small();
        for j in 0..a.n {
            for w in a.rows[j].windows(2) {
                assert!(w[0] < w[1]);
            }
            for &i in &a.rows[j] {
                assert!(i > j);
            }
            assert_eq!(a.rows[j].len(), a.vals[j].len());
        }
    }

    #[test]
    fn symbolic_contains_original_and_adds_fill() {
        let a = small();
        let sym = SymbolicFactor::analyze(&a);
        for j in 0..a.n {
            for &i in &a.rows[j] {
                assert!(sym.structs[j].contains(&i), "lost A({i},{j})");
            }
        }
        assert!(
            sym.nnz() >= a.nnz_lower() + a.n,
            "no fill at all is suspicious"
        );
    }

    #[test]
    fn etree_parent_is_first_struct_entry() {
        let a = small();
        let sym = SymbolicFactor::analyze(&a);
        for j in 0..a.n {
            match sym.structs[j].first() {
                Some(&f) => assert_eq!(sym.parent[j], f),
                None => assert_eq!(sym.parent[j], usize::MAX),
            }
        }
    }

    #[test]
    fn reference_cholesky_reconstructs_matrix() {
        let a = small();
        let sym = SymbolicFactor::analyze(&a);
        let l = reference_cholesky(&a, &sym);
        // Check A ≈ L·Lᵀ on the original entries.
        // Build a dense L for the check (n=64 is tiny).
        let n = a.n;
        let mut dense = vec![0.0f64; n * n];
        for j in 0..n {
            dense[j * n + j] = l[sym.diag_slot(j)];
            for &i in &sym.structs[j] {
                dense[i * n + j] = l[sym.slot(i, j)];
            }
        }
        let recon = |i: usize, j: usize| -> f64 {
            (0..=j.min(i))
                .map(|k| dense[i * n + k] * dense[j * n + k])
                .sum()
        };
        for j in 0..n {
            let d = recon(j, j);
            assert!((d - a.diag[j]).abs() < 1e-8 * a.diag[j].abs().max(1.0));
            for (k, &i) in a.rows[j].iter().enumerate() {
                let v = recon(i, j);
                assert!(
                    (v - a.vals[j][k]).abs() < 1e-8,
                    "A({i},{j}): {v} vs {}",
                    a.vals[j][k]
                );
            }
        }
    }

    #[test]
    fn update_counts_match_struct_membership() {
        let a = small();
        let sym = SymbolicFactor::analyze(&a);
        let counts = sym.update_counts();
        let total: u32 = counts.iter().sum();
        let expected: usize = sym.structs.iter().map(Vec::len).sum();
        assert_eq!(total as usize, expected);
    }

    #[test]
    fn supernodes_partition_and_are_fundamental() {
        let a = small();
        let sym = SymbolicFactor::analyze(&a);
        let sn = sym.supernodes(16);
        // Partition: contiguous, covering, non-empty.
        let mut prev = 0;
        for &(lo, hi) in &sn {
            assert_eq!(lo, prev);
            assert!(hi > lo && hi - lo <= 16);
            prev = hi;
        }
        assert_eq!(prev, a.n);
        // Fundamental: within a supernode, struct(j) = {j+1} ∪ struct(j+1).
        for &(lo, hi) in &sn {
            for j in lo..hi - 1 {
                assert_eq!(sym.parent[j], j + 1);
                assert_eq!(sym.structs[j].len(), sym.structs[j + 1].len() + 1);
                assert_eq!(sym.structs[j][0], j + 1);
            }
        }
        // A banded matrix should produce real merging, not all singletons.
        assert!(sn.len() < a.n, "no supernodes found at all");
    }

    #[test]
    fn amalgamated_panels_partition_with_fewer_tasks() {
        let a = small();
        let sym = SymbolicFactor::analyze(&a);
        let panels = sym.amalgamated_panels(16);
        let mut prev = 0;
        for &(lo, hi) in &panels {
            assert_eq!(lo, prev);
            assert!(hi > lo && hi - lo <= 16);
            prev = hi;
        }
        assert_eq!(prev, a.n);
        assert!(panels.len() <= sym.supernodes(16).len());
        assert!(
            panels.len() <= a.n.div_ceil(4),
            "amalgamation too weak: {}",
            panels.len()
        );
    }

    #[test]
    fn supernode_cap_respected() {
        let a = small();
        let sym = SymbolicFactor::analyze(&a);
        for &(lo, hi) in &sym.supernodes(2) {
            assert!(hi - lo <= 2);
        }
    }

    #[test]
    fn bcsstk_likes_have_paper_orders() {
        let a = SparseSpd::bcsstk14_like(1);
        assert_eq!(a.n, 1806);
        assert!(a.nnz_lower() > 15_000, "nnz {}", a.nnz_lower());
        let b = SparseSpd::bcsstk15_like(1);
        assert_eq!(b.n, 3948);
        assert!(b.nnz_lower() > a.nnz_lower());
    }
}
