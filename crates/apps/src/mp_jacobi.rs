//! Message-passing Jacobi — the paradigm-generality demonstration.
//!
//! The paper's third design goal is that CNI "efficiently supports both
//! the message passing and distributed shared memory paradigms" (§1); its
//! evaluation uses only DSM applications ("because we wanted to vary the
//! granularity of the applications keeping the programming paradigm
//! constant", §3.1). This module supplies the missing half: the same
//! Jacobi relaxation written against the explicit message-passing API.
//!
//! Each processor owns its row block in *private* memory; every iteration
//! it exchanges boundary rows with its neighbours over Application Device
//! Channels. The boundary rows live in fixed per-processor send buffers,
//! so after the first exchange the CNI transmits them from the Message
//! Cache ("if the application uses the same buffer for transmitting data,
//! it needs to DMA the buffer from the host memory onto the network
//! adaptor board only once", §2.2) — the temporal locality the paper's
//! transmit caching targets, in the message-passing paradigm.

use crate::jacobi::{reference, row_block, CYCLES_PER_POINT};
use cni::{Program, World};
use serde::{Deserialize, Serialize};
use std::sync::mpsc;

/// Message-passing Jacobi parameters.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct MpJacobiParams {
    /// Grid dimension.
    pub n: usize,
    /// Iterations.
    pub iters: usize,
}

/// Synthetic buffer-page ids for the boundary-row send buffers: one page
/// per (processor, which-edge, grid-parity) so transmit caching can bind
/// them.
fn buffer_page(me: usize, edge: usize, parity: usize) -> u64 {
    0x0100_0000 + (me as u64) * 16 + (edge as u64) * 2 + parity as u64
}

/// Build one program per processor plus a channel that yields each
/// processor's final block `(proc, rows)` when the run completes.
pub fn programs(
    world: &World,
    params: MpJacobiParams,
) -> (mpsc::Receiver<(usize, Vec<f64>)>, Vec<Program>) {
    let n = params.n;
    let procs = world.config().procs;
    let line_bytes = world.config().nic.cache_line_bytes as u32;
    let (result_tx, result_rx) = mpsc::channel();
    let progs = (0..procs)
        .map(|p| -> Program {
            let result_tx = result_tx.clone();
            Box::new(move |ctx| {
                let me = p;
                let (lo, hi) = row_block(n, procs, me);
                let rows = hi - lo;
                // Private grid: my rows plus one ghost row on each side.
                let mut a = vec![0.0f64; (rows + 2) * n];
                let mut b = a.clone();
                for r in 0..rows {
                    let gr = lo + r;
                    for c in 0..n {
                        if gr == 0 || gr == n - 1 || c == 0 || c == n - 1 {
                            a[(r + 1) * n + c] = 1.0;
                            b[(r + 1) * n + c] = 1.0;
                        }
                    }
                }
                let row_dirty = (n as u32 * 8 + 8).div_ceil(line_bytes);
                // A neighbour may race one iteration ahead (there is no
                // global barrier in the message-passing version), so every
                // row carries its iteration number in word 0 and early
                // arrivals are stashed.
                let mut stashed: Vec<(u32, Vec<u64>)> = Vec::new();
                for it in 0..params.iters {
                    let parity = it % 2;
                    // Exchange boundary rows. Send both first (the rows are
                    // copies in dedicated buffers), then receive both: a
                    // deadlock-free schedule.
                    let mut expect = 0;
                    if me > 0 {
                        let mut top: Vec<u64> = Vec::with_capacity(n + 1);
                        top.push(it as u64);
                        top.extend(a[n..2 * n].iter().map(|v| v.to_bits()));
                        ctx.send_data(
                            (me - 1) as u32,
                            top,
                            Some(buffer_page(me, 0, parity)),
                            true,
                            row_dirty,
                        );
                        expect += 1;
                    }
                    if me + 1 < procs {
                        let mut bottom: Vec<u64> = Vec::with_capacity(n + 1);
                        bottom.push(it as u64);
                        bottom.extend(a[rows * n..(rows + 1) * n].iter().map(|v| v.to_bits()));
                        ctx.send_data(
                            (me + 1) as u32,
                            bottom,
                            Some(buffer_page(me, 1, parity)),
                            true,
                            row_dirty,
                        );
                        expect += 1;
                    }
                    let mut got = 0;
                    let apply = |src: u32, data: &[u64], a: &mut Vec<f64>| {
                        let ghost_base = if (src as usize) < me {
                            0
                        } else {
                            (rows + 1) * n
                        };
                        for (c, w) in data[1..].iter().enumerate() {
                            a[ghost_base + c] = f64::from_bits(*w);
                        }
                    };
                    // Stashed rows from this iteration first.
                    stashed.retain(|(src, data)| {
                        if data[0] == it as u64 {
                            apply(*src, data, &mut a);
                            got += 1;
                            false
                        } else {
                            true
                        }
                    });
                    while got < expect {
                        let (src, data) = ctx.recv_data();
                        if data[0] == it as u64 {
                            apply(src, &data, &mut a);
                            got += 1;
                        } else {
                            debug_assert_eq!(data[0], it as u64 + 1, "too far ahead");
                            stashed.push((src, data.as_ref().clone()));
                        }
                    }
                    // Relax my interior rows.
                    for r in 1..=rows {
                        let gr = lo + r - 1;
                        if gr == 0 || gr == n - 1 {
                            b[r * n..(r + 1) * n].copy_from_slice(&a[r * n..(r + 1) * n]);
                            continue;
                        }
                        for c in 1..n - 1 {
                            b[r * n + c] = 0.25
                                * (a[(r - 1) * n + c]
                                    + a[(r + 1) * n + c]
                                    + a[r * n + c - 1]
                                    + a[r * n + c + 1]);
                        }
                        b[r * n] = a[r * n];
                        b[r * n + n - 1] = a[r * n + n - 1];
                        ctx.compute((n as u64 - 2) * CYCLES_PER_POINT);
                    }
                    std::mem::swap(&mut a, &mut b);
                }
                let block: Vec<f64> = a[n..(rows + 1) * n].to_vec();
                let _ = result_tx.send((me, block));
            })
        })
        .collect();
    (result_rx, progs)
}

/// Run message-passing Jacobi and return the assembled final grid.
pub fn run(world: &mut World, params: MpJacobiParams) -> (Vec<f64>, cni::RunReport) {
    let (rx, progs) = programs(world, params);
    let report = world.run(progs);
    let n = params.n;
    let procs = world.config().procs;
    let mut grid = vec![0.0f64; n * n];
    for _ in 0..procs {
        let (p, block) = rx.recv().expect("every program reports its block");
        let (lo, _) = row_block(n, procs, p);
        grid[lo * n..lo * n + block.len()].copy_from_slice(&block);
    }
    (grid, report)
}

/// The DSM reference produces the same values: re-export for tests.
pub fn reference_grid(params: MpJacobiParams) -> Vec<f64> {
    reference(params.n, params.iters)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffer_pages_are_distinct() {
        let mut seen = std::collections::HashSet::new();
        for me in 0..32 {
            for edge in 0..2 {
                for parity in 0..2 {
                    assert!(seen.insert(buffer_page(me, edge, parity)));
                }
            }
        }
    }
}
