//! `cni-apps` — the paper's benchmark applications, "representing the
//! spectrum of granularity" (§3.1): Jacobi (coarse), Water (medium) and
//! sparse Cholesky (fine), plus the synthetic sparse-matrix substrate the
//! Cholesky runs need.
//!
//! Every application is expressed as a set of per-processor programs over
//! the [`cni::ProcCtx`] API — real computation over simulated distributed
//! shared memory — so the same binaries drive both the CNI and the
//! standard-NIC configurations, exactly as in the paper's methodology
//! ("Message passing applications were not used because we wanted to vary
//! the granularity of the applications keeping the programming paradigm
//! constant").

#![deny(missing_docs)]

pub mod checkpoint;
pub mod cholesky;
pub mod experiments;
pub mod jacobi;
pub mod mp_jacobi;
pub mod sparse;
pub mod sweep;
pub mod water;

pub use cholesky::{CholeskyLayout, CholeskyMatrix};
pub use jacobi::{JacobiLayout, JacobiParams};
pub use sparse::{SparseSpd, SymbolicFactor};
pub use water::{WaterLayout, WaterParams};
