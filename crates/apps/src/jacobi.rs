//! Jacobi iteration — the paper's coarse-grained application.
//!
//! "Jacobi is a coarse-grained application with two major synchronization
//! points per iteration and a high computation/communication ratio. Each
//! point in the strip is iteratively calculated from the values of its
//! neighbors." (§3.1)
//!
//! Two shared `n × n` grids, row-block partitioned; every iteration each
//! processor reads its neighbours' boundary rows, relaxes its block from
//! grid A into grid B, crosses a barrier, and the grids swap roles at the
//! second barrier. The boundary rows are the only communicated data, so
//! their pages are re-transmitted every iteration — the access pattern
//! that gives the CNI its 96–99.5% network-cache hit ratios in Figures
//! 2–4.

use cni::{Program, VAddr, World};
use serde::{Deserialize, Serialize};

/// Cycles charged per relaxed grid point. Calibrated for the 166 MHz
/// scalar host of Table 1: loads/stores with cache effects, address
/// arithmetic, 4 adds and a multiply (see EXPERIMENTS.md, calibration).
pub const CYCLES_PER_POINT: u64 = 35;

/// Jacobi workload parameters.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct JacobiParams {
    /// Grid dimension (the paper uses 128, 256, 512, 1024).
    pub n: usize,
    /// Iterations to run.
    pub iters: usize,
    /// After the run, have processor 0 read the whole result grid so a
    /// test can collect it (off for measured runs).
    pub verify: bool,
}

impl JacobiParams {
    /// The paper's configurations. Twenty-five iterations matches Table
    /// 2's computation budget (1.16·10⁹ cycles ≈ 25 sweeps of 1024² points
    /// at ~45 cycles each) and amortises cold-start Message Cache misses
    /// the way a to-convergence run would.
    pub fn paper(n: usize) -> Self {
        JacobiParams {
            n,
            iters: 25,
            verify: false,
        }
    }
}

/// Shared-memory layout of one Jacobi instance.
#[derive(Clone, Copy, Debug)]
pub struct JacobiLayout {
    /// Grid A base.
    pub a: VAddr,
    /// Grid B base.
    pub b: VAddr,
    /// Grid dimension.
    pub n: usize,
}

impl JacobiLayout {
    fn idx(self, grid: VAddr, i: usize, j: usize) -> VAddr {
        grid.add(((i * self.n + j) * 8) as u64)
    }
}

/// Allocate the grids and build one program per processor.
pub fn programs(world: &mut World, params: JacobiParams) -> (JacobiLayout, Vec<Program>) {
    let n = params.n;
    let procs = world.config().procs;
    let bytes = n * n * 8;
    // First-touch placement: each page of the grids lives with the
    // processor owning its rows, so initialisation is local and boundary
    // pages are served by their writers.
    let page_bytes = world.config().page_bytes;
    let row_owner = move |i: usize| -> usize {
        let row = ((i * page_bytes) / (n * 8)).min(n - 1);
        (0..procs)
            .find(|&p| {
                let (lo, hi) = row_block(n, procs, p);
                row >= lo && row < hi
            })
            .expect("row has an owner")
    };
    let layout = JacobiLayout {
        a: world.alloc_with_homes(bytes, row_owner),
        b: world.alloc_with_homes(bytes, row_owner),
        n,
    };
    let progs = (0..procs)
        .map(|p| -> Program {
            Box::new(move |ctx| {
                let me = p;
                let procs = procs;
                let (lo, hi) = row_block(n, procs, me);
                // Initialise my block of grid A: boundary condition = 1.0
                // on the outer frame, 0 inside.
                for i in lo..hi {
                    for j in 0..n {
                        let v = if i == 0 || i == n - 1 || j == 0 || j == n - 1 {
                            1.0
                        } else {
                            0.0
                        };
                        ctx.write_f64(layout.idx(layout.a, i, j), v);
                        ctx.write_f64(layout.idx(layout.b, i, j), v);
                    }
                }
                ctx.barrier();
                let (mut src, mut dst) = (layout.a, layout.b);
                for _ in 0..params.iters {
                    for i in lo.max(1)..hi.min(n - 1) {
                        for j in 1..(n - 1) {
                            let up = ctx.read_f64(layout.idx(src, i - 1, j));
                            let down = ctx.read_f64(layout.idx(src, i + 1, j));
                            let left = ctx.read_f64(layout.idx(src, i, j - 1));
                            let right = ctx.read_f64(layout.idx(src, i, j + 1));
                            ctx.write_f64(layout.idx(dst, i, j), 0.25 * (up + down + left + right));
                        }
                        ctx.compute((n as u64 - 2) * CYCLES_PER_POINT);
                    }
                    // The paper's two synchronisation points per iteration.
                    ctx.barrier();
                    std::mem::swap(&mut src, &mut dst);
                    ctx.barrier();
                }
                if params.verify && me == 0 {
                    // Materialise a coherent copy of the result on node 0.
                    for i in 0..n {
                        for j in 0..n {
                            let _ = ctx.read_f64(layout.idx(src, i, j));
                        }
                    }
                }
            })
        })
        .collect();
    (layout, progs)
}

/// The row range `[lo, hi)` owned by processor `p` of `procs`.
pub fn row_block(n: usize, procs: usize, p: usize) -> (usize, usize) {
    let per = n / procs;
    let extra = n % procs;
    let lo = p * per + p.min(extra);
    let hi = lo + per + usize::from(p < extra);
    (lo, hi)
}

/// Sequential reference: run the same relaxation in plain Rust.
pub fn reference(n: usize, iters: usize) -> Vec<f64> {
    let mut a = vec![0.0f64; n * n];
    let mut b = vec![0.0f64; n * n];
    for i in 0..n {
        for j in 0..n {
            if i == 0 || i == n - 1 || j == 0 || j == n - 1 {
                a[i * n + j] = 1.0;
                b[i * n + j] = 1.0;
            }
        }
    }
    for _ in 0..iters {
        for i in 1..n - 1 {
            for j in 1..n - 1 {
                b[i * n + j] = 0.25
                    * (a[(i - 1) * n + j]
                        + a[(i + 1) * n + j]
                        + a[i * n + j - 1]
                        + a[i * n + j + 1]);
            }
        }
        std::mem::swap(&mut a, &mut b);
    }
    a
}

/// Which grid holds the result after `iters` iterations (grids swap each
/// iteration).
pub fn result_grid(layout: JacobiLayout, iters: usize) -> VAddr {
    if iters.is_multiple_of(2) {
        layout.a
    } else {
        layout.b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_block_covers_everything() {
        for n in [7usize, 16, 33] {
            for procs in [1usize, 2, 3, 8] {
                let mut covered = 0;
                let mut prev_hi = 0;
                for p in 0..procs {
                    let (lo, hi) = row_block(n, procs, p);
                    assert_eq!(lo, prev_hi, "blocks must be contiguous");
                    covered += hi - lo;
                    prev_hi = hi;
                }
                assert_eq!(covered, n);
                assert_eq!(prev_hi, n);
            }
        }
    }

    #[test]
    fn reference_converges_toward_boundary_value() {
        let n = 16;
        let r0 = reference(n, 1);
        let r50 = reference(n, 50);
        // Interior heats up toward the boundary value 1.0 monotonically.
        let c0 = r0[(n / 2) * n + n / 2];
        let c50 = r50[(n / 2) * n + n / 2];
        assert!(c50 > c0);
        assert!(c50 < 1.0);
    }
}
