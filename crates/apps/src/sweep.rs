//! Sweep specifications: the JSON format behind `cni-run --sweep`.
//!
//! A sweep file is a JSON array of run objects. Every field except `app`
//! is optional and defaults to `cni-run`'s single-run defaults, so a
//! minimal sweep is just `[{"app": "jacobi"}, {"app": "water"}]`:
//!
//! ```json
//! [
//!   {"label": "j64-cni", "app": "jacobi", "n": 64, "iters": 5,
//!    "procs": 4, "nic": "cni", "page_bytes": 2048, "seed": 24301},
//!   {"app": "water", "molecules": 64, "steps": 2, "procs": 8,
//!    "nic": "standard", "loss_prob": 0.01, "fault_seed": 7},
//!   {"app": "cholesky", "matrix": "bcsstk14", "jumbo": true}
//! ]
//! ```
//!
//! Parsing is strict: unknown keys, malformed values and out-of-range
//! probabilities are reported with the run's index rather than silently
//! ignored — a typo in a 100-run sweep must not cost a night of compute.

use crate::cholesky::CholeskyMatrix;
use crate::experiments::App;
use cni::{Config, FaultPlan};
use cni_batch::RunSpec;
use serde_json::Value;

/// Every key a sweep entry may carry.
const KNOWN_KEYS: &[&str] = &[
    "label",
    "app",
    "n",
    "iters",
    "molecules",
    "steps",
    "matrix",
    "procs",
    "nic",
    "page_bytes",
    "msg_cache_bytes",
    "jumbo",
    "topology",
    "tree_barrier",
    "collectives",
    "seed",
    "loss_prob",
    "corrupt_prob",
    "jitter_ps",
    "fault_seed",
];

/// Parse a sweep file into executable [`RunSpec`]s, one per array entry,
/// in file order (which is also the batch's job-index order).
pub fn parse_sweep(text: &str) -> Result<Vec<RunSpec<App>>, String> {
    let v: Value =
        serde_json::from_str(text).map_err(|e| format!("sweep spec is not valid JSON: {e}"))?;
    let arr = v
        .as_array()
        .ok_or_else(|| "sweep spec must be a JSON array of run objects".to_string())?;
    if arr.is_empty() {
        return Err("sweep spec contains no runs".to_string());
    }
    arr.iter()
        .enumerate()
        .map(|(i, e)| parse_entry(i, e).map_err(|msg| format!("run {i}: {msg}")))
        .collect()
}

fn get_u64(obj: &serde_json::Map, key: &str, default: u64) -> Result<u64, String> {
    match obj.get(key) {
        None => Ok(default),
        Some(v) => v
            .as_u64()
            .ok_or_else(|| format!("`{key}` must be a non-negative integer")),
    }
}

fn get_f64(obj: &serde_json::Map, key: &str, default: f64) -> Result<f64, String> {
    match obj.get(key) {
        None => Ok(default),
        Some(v) => v
            .as_f64()
            .ok_or_else(|| format!("`{key}` must be a number")),
    }
}

fn get_bool(obj: &serde_json::Map, key: &str) -> Result<bool, String> {
    match obj.get(key) {
        None => Ok(false),
        Some(v) => v
            .as_bool()
            .ok_or_else(|| format!("`{key}` must be a boolean")),
    }
}

fn get_str<'a>(obj: &'a serde_json::Map, key: &str, default: &'a str) -> Result<&'a str, String> {
    match obj.get(key) {
        None => Ok(default),
        Some(v) => v
            .as_str()
            .ok_or_else(|| format!("`{key}` must be a string")),
    }
}

fn parse_entry(index: usize, v: &Value) -> Result<RunSpec<App>, String> {
    let obj = v
        .as_object()
        .ok_or_else(|| "entry is not a JSON object".to_string())?;
    if let Some(unknown) = obj.keys().find(|k| !KNOWN_KEYS.contains(&k.as_str())) {
        return Err(format!(
            "unknown key `{unknown}` (known keys: {})",
            KNOWN_KEYS.join(", ")
        ));
    }

    let app_name = obj
        .get("app")
        .and_then(|v| v.as_str())
        .ok_or_else(|| "missing required string `app` (jacobi|water|cholesky)".to_string())?;
    let app = match app_name {
        "jacobi" => App::Jacobi {
            n: get_u64(obj, "n", 256)? as usize,
            iters: get_u64(obj, "iters", 25)? as usize,
        },
        "water" => App::Water {
            molecules: get_u64(obj, "molecules", 216)? as usize,
            steps: get_u64(obj, "steps", 2)? as usize,
        },
        "cholesky" => App::Cholesky {
            matrix: match get_str(obj, "matrix", "bcsstk14")? {
                "bcsstk14" => CholeskyMatrix::Bcsstk14,
                "bcsstk15" => CholeskyMatrix::Bcsstk15,
                other => return Err(format!("unknown matrix {other:?}")),
            },
        },
        other => return Err(format!("unknown app {other:?} (jacobi|water|cholesky)")),
    };

    let mut cfg = Config::paper_default();
    let topology: cni_atm::Topology = match get_str(obj, "topology", "single")? {
        "single" => cni_atm::Topology::Single,
        s => s.parse()?,
    };
    topology.validate(cfg.atm.ports)?;
    cfg.atm.topology = topology;
    let hosts = cfg.atm.hosts();

    let procs = get_u64(obj, "procs", 8)? as usize;
    if !(1..=hosts).contains(&procs) {
        return Err(format!(
            "procs must be between 1 and {hosts} (the fabric serves {hosts} hosts), got {procs}"
        ));
    }
    let nic = get_str(obj, "nic", "cni")?;
    if !matches!(nic, "cni" | "standard") {
        return Err(format!("unknown nic {nic:?} (cni|standard)"));
    }

    let mut cfg = cfg
        .with_procs(procs)
        .with_page_bytes(get_u64(obj, "page_bytes", 2048)? as usize)
        .with_msg_cache_bytes(get_u64(obj, "msg_cache_bytes", 32 * 1024)? as usize);
    cfg.seed = get_u64(obj, "seed", 0x5EED)?;
    if get_bool(obj, "jumbo")? {
        cfg = cfg.with_unrestricted_cells();
    }
    if get_bool(obj, "tree_barrier")? {
        cfg = cfg.with_tree_barrier();
    }
    if get_bool(obj, "collectives")? {
        cfg = cfg.with_collectives();
    }

    let mut plan = FaultPlan::none();
    plan.drop_prob = get_f64(obj, "loss_prob", 0.0)?;
    plan.corrupt_prob = get_f64(obj, "corrupt_prob", 0.0)?;
    plan.jitter_ps = get_u64(obj, "jitter_ps", 0)?;
    plan.seed = get_u64(obj, "fault_seed", 1)?;
    if !(0.0..1.0).contains(&plan.drop_prob) || !(0.0..1.0).contains(&plan.corrupt_prob) {
        return Err("loss_prob and corrupt_prob must be in [0, 1)".to_string());
    }
    cfg = cfg.with_faults(plan);

    cfg = if nic == "cni" {
        cfg.cni()
    } else {
        cfg.standard()
    };

    let label = match obj.get("label") {
        Some(v) => v
            .as_str()
            .ok_or_else(|| "`label` must be a string".to_string())?
            .to_string(),
        None => format!("{index:03}-{app_name}-{procs}p-{nic}"),
    };
    Ok(RunSpec::new(label, cfg, app))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_sweep_gets_defaults() {
        let specs = parse_sweep(r#"[{"app": "jacobi"}, {"app": "water"}]"#).unwrap();
        assert_eq!(specs.len(), 2);
        assert_eq!(specs[0].config.procs, 8);
        assert_eq!(specs[0].seed, 0x5EED);
        assert!(matches!(
            specs[0].workload,
            App::Jacobi { n: 256, iters: 25 }
        ));
        assert!(matches!(
            specs[1].workload,
            App::Water {
                molecules: 216,
                steps: 2
            }
        ));
        assert_eq!(specs[0].label, "000-jacobi-8p-cni");
        assert_eq!(specs[1].label, "001-water-8p-cni");
    }

    #[test]
    fn full_entry_round_trips_every_knob() {
        let specs = parse_sweep(
            r#"[{"label": "x", "app": "cholesky", "matrix": "bcsstk15",
                 "procs": 4, "nic": "standard", "page_bytes": 4096,
                 "msg_cache_bytes": 65536, "jumbo": true, "tree_barrier": true,
                 "seed": 7, "loss_prob": 0.05, "corrupt_prob": 0.01,
                 "jitter_ps": 1000, "fault_seed": 3}]"#,
        )
        .unwrap();
        let s = &specs[0];
        assert_eq!(s.label, "x");
        assert_eq!(s.config.procs, 4);
        assert_eq!(s.seed, 7);
        assert_eq!(s.faults.drop_prob, 0.05);
        assert_eq!(s.faults.corrupt_prob, 0.01);
        assert_eq!(s.faults.jitter_ps, 1000);
        assert_eq!(s.faults.seed, 3);
        let cfg = s.effective_config();
        assert_eq!(cfg.seed, 7);
        assert_eq!(cfg.faults.drop_prob, 0.05);
    }

    #[test]
    fn topology_and_collectives_keys_parse() {
        let specs = parse_sweep(
            r#"[{"app": "jacobi", "topology": "4x16x16", "procs": 64,
                 "collectives": true}]"#,
        )
        .unwrap();
        let cfg = &specs[0].config;
        assert_eq!(
            cfg.atm.topology,
            cni_atm::Topology::FatTree {
                leaves: 4,
                down: 16,
                up: 16,
            }
        );
        assert_eq!(cfg.procs, 64);
        assert!(cfg.collectives);
        assert!(cfg.tree_barrier, "collectives imply the tree barrier");
    }

    #[test]
    fn strict_errors_name_the_run() {
        for (spec, needle) in [
            (r#"{"app": "jacobi"}"#, "array"),
            (r#"[]"#, "no runs"),
            (r#"[{"app": "jacobi", "porcs": 4}]"#, "unknown key `porcs`"),
            (r#"[{"n": 64}]"#, "missing required string `app`"),
            (r#"[{"app": "doom"}]"#, "unknown app"),
            (r#"[{"app": "jacobi", "procs": 64}]"#, "between 1 and 32"),
            (
                r#"[{"app": "jacobi", "topology": "3x16x16"}]"#,
                "power-of-two leaf count",
            ),
            (
                r#"[{"app": "jacobi", "topology": "mesh"}]"#,
                "`single` or `LxDxU`",
            ),
            (
                r#"[{"app": "jacobi", "topology": "4x16x16", "procs": 65}]"#,
                "between 1 and 64",
            ),
            (r#"[{"app": "jacobi", "nic": "fast"}]"#, "unknown nic"),
            (r#"[{"app": "jacobi", "loss_prob": 1.5}]"#, "[0, 1)"),
            (r#"[{"app": "jacobi", "n": "big"}]"#, "non-negative integer"),
            (r#"[{"app": "jacobi"}, {"app": 3}]"#, "run 1"),
        ] {
            let err = parse_sweep(spec).unwrap_err();
            assert!(err.contains(needle), "spec {spec}: {err}");
        }
    }
}
