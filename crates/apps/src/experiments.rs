//! Experiment harness: the runs behind every table and figure of the
//! paper's evaluation (§3), shared by the bench targets, the examples and
//! the integration tests.
//!
//! Each function builds fresh worlds (CNI and standard-NIC) with identical
//! workloads and returns the measurements the corresponding figure plots:
//! speedups + network-cache hit ratios (Figures 2–4, 6–8, 10–11),
//! page-size sensitivity (5, 9, 12), overhead breakdowns (Tables 2–4),
//! Message-Cache size sensitivity (Figure 13), node-to-node latency
//! (Figure 14) and the unrestricted-cell-size improvement (Table 5).
//!
//! Every sweep executes its runs through `cni-batch`'s work-stealing
//! [`Pool`]: each run is an independent deterministic simulation, so the
//! harness enumerates the full run list up front, hands it to the pool,
//! and assembles results *by index*. Results are identical whatever
//! `$CNI_JOBS` says — parallelism only changes the wall clock.

use crate::{cholesky, jacobi, water};
use cni::{Config, ProcTimes, RunReport, SimTime, TraceSink, World};
use cni_batch::Pool;
use serde::{Deserialize, Serialize};

/// Which application an experiment runs.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub enum App {
    /// Jacobi relaxation with an `n × n` grid.
    Jacobi {
        /// Grid dimension.
        n: usize,
        /// Iterations.
        iters: usize,
    },
    /// Water molecular dynamics.
    Water {
        /// Molecule count.
        molecules: usize,
        /// Time steps.
        steps: usize,
    },
    /// Sparse Cholesky factorisation.
    Cholesky {
        /// Which matrix.
        matrix: cholesky::CholeskyMatrix,
    },
}

impl App {
    /// Human-readable name for reports.
    pub fn name(&self) -> String {
        match self {
            App::Jacobi { n, .. } => format!("Jacobi {n}x{n}"),
            App::Water { molecules, .. } => format!("Water {molecules} molecules"),
            App::Cholesky { matrix } => format!("Cholesky {matrix:?}"),
        }
    }
}

/// The workload seed used throughout the evaluation.
pub const SEED: u64 = 0x5EED;

/// The pool every sweep in this module runs on, sized by
/// [`cni_batch::default_jobs`] (`$CNI_JOBS` overrides the machine's
/// available parallelism). Quiet: the figure harnesses print their own
/// tables.
fn pool() -> Pool {
    Pool::with_default_workers().quiet()
}

/// `cfg` re-seeded for averaging run `k` (the seed schedule [`mean_wall`]
/// has always used).
fn seeded(cfg: Config, k: u64) -> Config {
    let mut c = cfg;
    c.seed = cfg.seed.wrapping_add(k * 0x9E37);
    c
}

/// Run `app` on a cluster configured by `cfg`.
pub fn run_app(cfg: Config, app: App) -> RunReport {
    run_app_traced(cfg, app, TraceSink::Disabled, None)
}

/// Build `app`'s per-processor programs against `world`, performing the
/// application's `alloc()` calls as a side effect.
///
/// This is the **setup contract** of checkpoint/restore: resuming a
/// snapshot requires reproducing the exact allocation sequence of the
/// original run, so both the fresh-run path ([`run_app_traced`]) and the
/// resume path ([`crate::checkpoint`]) must go through this one function.
pub fn build_programs(world: &mut World, app: App) -> Vec<cni::Program> {
    match app {
        App::Jacobi { n, iters } => {
            let (_, progs) = jacobi::programs(
                world,
                jacobi::JacobiParams {
                    n,
                    iters,
                    verify: false,
                },
            );
            progs
        }
        App::Water { molecules, steps } => {
            let (_, progs) = water::programs(
                world,
                water::WaterParams {
                    molecules,
                    steps,
                    verify: false,
                },
            );
            progs
        }
        App::Cholesky { matrix } => {
            let (_, _, progs) = cholesky::programs(world, matrix, SEED, false);
            progs
        }
    }
}

/// Run `app` with `trace` attached to every instrumented component and,
/// when `metrics_interval` is given, a periodic per-node metrics sampler.
/// Drain the sink afterwards to export the recorded events.
pub fn run_app_traced(
    cfg: Config,
    app: App,
    trace: TraceSink,
    metrics_interval: Option<SimTime>,
) -> RunReport {
    let mut world = World::new(cfg);
    world.set_trace(trace);
    if let Some(iv) = metrics_interval {
        world.set_metrics_interval(iv);
    }
    let progs = build_programs(&mut world, app);
    world.run(progs)
}

/// Run `app` with causal span tracing and the utilization sampler on:
/// the observability configuration behind `cni-run --obs` and the golden
/// observability fixture. Records into a 2²⁰-event ring with the default
/// 100 µs metrics cadence, then drains the trace and populates
/// [`RunReport::stages`](cni::RunReport) with the span-tree stage
/// decomposition. Returns the drained records so callers can run further
/// analyses (critical path, utilization) or export the trace.
pub fn run_app_obs(cfg: Config, app: App) -> (RunReport, Vec<cni::TraceRecord>) {
    let sink = TraceSink::ring(1 << 20);
    let mut report = run_app_traced(cfg, app, sink.clone(), Some(SimTime::from_us(100)));
    let records = sink.drain();
    report.stages = Some(cni_obs::decompose(&cni_obs::SpanTree::build(&records)));
    (report, records)
}

/// One point of a speedup figure.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct SpeedupPoint {
    /// Processor count.
    pub procs: usize,
    /// Speedup of the CNI cluster over its own 1-processor run.
    pub cni_speedup: f64,
    /// Speedup of the standard-NIC cluster over its own 1-processor run.
    pub std_speedup: f64,
    /// The CNI's network cache hit ratio (percent).
    pub hit_ratio_pct: f64,
}

/// Mean completion time over `runs` seeds: convoy formation in
/// lock-heavy phases makes single deterministic runs noisy, and
/// experiments that *difference* two similar walls (page-size sweeps,
/// Table 5) need the averaging. The seeds run in parallel on the batch
/// pool; the mean is over the same seed schedule either way.
pub fn mean_wall(cfg: Config, app: App, runs: u64) -> f64 {
    let cfgs: Vec<Config> = (0..runs).map(|k| seeded(cfg, k)).collect();
    let walls = pool().map(cfgs, |_, c| run_app(*c, app).wall.as_ps() as f64);
    walls.iter().sum::<f64>() / runs as f64
}

/// A full speedup curve (Figures 2–4, 6–8, 10–11): both configurations at
/// each processor count, normalised to their own single-processor runs.
/// All `2 + 2·|procs|` runs execute concurrently on the batch pool.
pub fn speedup_curve(base: Config, app: App, procs: &[usize]) -> Vec<SpeedupPoint> {
    let mut cfgs = vec![base.cni().with_procs(1), base.standard().with_procs(1)];
    for &p in procs {
        cfgs.push(base.cni().with_procs(p));
        cfgs.push(base.standard().with_procs(p));
    }
    let reports = pool().map(cfgs, |_, cfg| run_app(*cfg, app));
    let cni_base = reports[0].wall;
    let std_base = reports[1].wall;
    procs
        .iter()
        .enumerate()
        .map(|(k, &p)| {
            let cni = &reports[2 + 2 * k];
            let std_ = &reports[3 + 2 * k];
            SpeedupPoint {
                procs: p,
                cni_speedup: cni_base.as_ps() as f64 / cni.wall.as_ps() as f64,
                std_speedup: std_base.as_ps() as f64 / std_.wall.as_ps() as f64,
                hit_ratio_pct: cni.hit_ratio() * 100.0,
            }
        })
        .collect()
}

/// One point of a page-size sensitivity figure.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct PageSizePoint {
    /// Shared page size in bytes.
    pub page_bytes: usize,
    /// CNI speedup (vs the CNI 1-processor run at the same page size).
    pub cni_speedup: f64,
    /// Standard speedup (vs the standard 1-processor run, same page size).
    pub std_speedup: f64,
}

/// Page-size sensitivity (Figures 5, 9, 12). The whole grid — per size:
/// two single-processor baselines plus 3 averaging seeds for each
/// interface — is one flat batch; results are indexed back per size.
pub fn page_size_sweep(
    base: Config,
    app: App,
    procs: usize,
    sizes: &[usize],
) -> Vec<PageSizePoint> {
    const RUNS: u64 = 3;
    let stride = 2 + 2 * RUNS as usize;
    let mut cfgs = Vec::with_capacity(sizes.len() * stride);
    for &bytes in sizes {
        let cfg = base.with_page_bytes(bytes);
        cfgs.push(cfg.cni().with_procs(1));
        cfgs.push(cfg.standard().with_procs(1));
        for k in 0..RUNS {
            cfgs.push(seeded(cfg.cni().with_procs(procs), k));
        }
        for k in 0..RUNS {
            cfgs.push(seeded(cfg.standard().with_procs(procs), k));
        }
    }
    let walls = pool().map(cfgs, |_, c| run_app(*c, app).wall.as_ps() as f64);
    sizes
        .iter()
        .enumerate()
        .map(|(s, &bytes)| {
            let b = s * stride;
            let mean = |lo: usize| -> f64 {
                walls[lo..lo + RUNS as usize].iter().sum::<f64>() / RUNS as f64
            };
            PageSizePoint {
                page_bytes: bytes,
                cni_speedup: walls[b] / mean(b + 2),
                std_speedup: walls[b + 1] / mean(b + 2 + RUNS as usize),
            }
        })
        .collect()
}

/// An overhead-breakdown row (Tables 2–4): mean per-processor times in
/// units of 10⁹ CPU cycles, as the paper reports them.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct OverheadRow {
    /// Synchronisation overhead.
    pub synch_overhead: f64,
    /// Synchronisation delay.
    pub synch_delay: f64,
    /// Computation.
    pub computation: f64,
    /// Total.
    pub total: f64,
}

impl OverheadRow {
    fn from_times(t: ProcTimes, cfg: &Config) -> Self {
        let c = cfg.nic.host_clock;
        OverheadRow {
            synch_overhead: RunReport::gcycles(t.overhead, c),
            synch_delay: RunReport::gcycles(t.delay, c),
            computation: RunReport::gcycles(t.compute, c),
            total: RunReport::gcycles(t.total, c),
        }
    }
}

/// Overhead breakdowns for both configurations (Tables 2–4); the two
/// runs execute concurrently.
pub fn overhead_table(base: Config, app: App, procs: usize) -> (OverheadRow, OverheadRow) {
    let cni_cfg = base.cni().with_procs(procs);
    let std_cfg = base.standard().with_procs(procs);
    let reports = pool().map(vec![cni_cfg, std_cfg], |_, c| run_app(*c, app));
    (
        OverheadRow::from_times(reports[0].mean_breakdown(), &cni_cfg),
        OverheadRow::from_times(reports[1].mean_breakdown(), &std_cfg),
    )
}

/// One point of the Message-Cache size sensitivity figure (Figure 13).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct CacheSizePoint {
    /// Message Cache capacity in bytes.
    pub cache_bytes: usize,
    /// Network cache hit ratio (percent).
    pub hit_ratio_pct: f64,
}

/// Hit ratio as a function of Message-Cache size (Figure 13); one batch
/// job per cache size.
pub fn cache_size_sweep(
    base: Config,
    app: App,
    procs: usize,
    sizes: &[usize],
) -> Vec<CacheSizePoint> {
    let cfgs: Vec<Config> = sizes
        .iter()
        .map(|&bytes| base.cni().with_procs(procs).with_msg_cache_bytes(bytes))
        .collect();
    let reports = pool().map(cfgs, |_, c| run_app(*c, app));
    sizes
        .iter()
        .zip(&reports)
        .map(|(&bytes, r)| CacheSizePoint {
            cache_bytes: bytes,
            hit_ratio_pct: r.hit_ratio() * 100.0,
        })
        .collect()
}

/// Percentage improvement from the unrestricted (jumbo) cell size
/// (Table 5), for the CNI configuration. All six runs (3 averaging seeds
/// × {restricted, jumbo}) are one batch.
pub fn jumbo_improvement_pct(base: Config, app: App, procs: usize) -> f64 {
    const RUNS: u64 = 3;
    let restricted = base.cni().with_procs(procs);
    let jumbo = restricted.with_unrestricted_cells();
    let mut cfgs: Vec<Config> = (0..RUNS).map(|k| seeded(restricted, k)).collect();
    cfgs.extend((0..RUNS).map(|k| seeded(jumbo, k)));
    let walls = pool().map(cfgs, |_, c| run_app(*c, app).wall.as_ps() as f64);
    let mean = |lo: usize| walls[lo..lo + RUNS as usize].iter().sum::<f64>() / RUNS as f64;
    let with_cells = mean(0);
    let jumbo_wall = mean(RUNS as usize);
    (with_cells - jumbo_wall) / with_cells * 100.0
}

/// One row of the mechanism-ablation study: the CNI with one mechanism
/// removed.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AblationRow {
    /// Which variant ("full CNI", "no message cache", ...).
    pub variant: String,
    /// Completion time in milliseconds of virtual time.
    pub wall_ms: f64,
    /// Slowdown relative to the full CNI.
    pub slowdown_vs_cni: f64,
    /// Network cache hit ratio (percent).
    pub hit_ratio_pct: f64,
    /// Host interrupts taken.
    pub interrupts: u64,
}

/// Ablation study: which of the paper's three mechanisms buys what.
/// Runs the full CNI, then the CNI minus each mechanism, then the
/// standard interface (= minus all three).
pub fn ablation(base: Config, app: App, procs: usize) -> Vec<AblationRow> {
    use cni_nic::config::CniFeatures;
    let variants: Vec<(&str, Config)> = vec![
        ("full CNI", base.cni().with_procs(procs)),
        (
            "no Message Cache",
            base.cni().with_procs(procs).with_cni_features(CniFeatures {
                msg_cache: false,
                ..CniFeatures::default()
            }),
        ),
        (
            "no AIH (protocol on host)",
            base.cni().with_procs(procs).with_cni_features(CniFeatures {
                aih: false,
                ..CniFeatures::default()
            }),
        ),
        (
            "no polling (interrupts)",
            base.cni().with_procs(procs).with_cni_features(CniFeatures {
                polling: false,
                ..CniFeatures::default()
            }),
        ),
        ("standard NIC", base.standard().with_procs(procs)),
    ];
    let (names, cfgs): (Vec<&str>, Vec<Config>) = variants.into_iter().unzip();
    let reports = pool().map(cfgs, |_, c| run_app(*c, app));
    let cni_wall = reports[0].wall.as_ms_f64();
    names
        .into_iter()
        .zip(&reports)
        .map(|(name, r)| AblationRow {
            variant: name.to_string(),
            wall_ms: r.wall.as_ms_f64(),
            slowdown_vs_cni: r.wall.as_ms_f64() / cni_wall,
            hit_ratio_pct: r.hit_ratio() * 100.0,
            interrupts: r.interrupts(),
        })
        .collect()
}

/// One point of the node-to-node latency microbenchmark (Figure 14).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct LatencyPoint {
    /// Message size in bytes.
    pub bytes: usize,
    /// CNI one-way latency in microseconds (100% Message-Cache hits).
    pub cni_us: f64,
    /// Standard-NIC one-way latency in microseconds.
    pub std_us: f64,
}

/// Measure best-case one-way latency via a warmed-up ping-pong: the sender
/// reuses one page-backed buffer, so after the cold start every CNI
/// transmit hits the Message Cache (the paper's "assuming a 100% network
/// cache hit ratio"). Each (size, interface) pair is one batch job.
pub fn latency_curve(base: Config, sizes: &[usize], rounds: u32) -> Vec<LatencyPoint> {
    let mut jobs: Vec<(usize, Config)> = Vec::with_capacity(sizes.len() * 2);
    for &bytes in sizes {
        jobs.push((bytes, base.cni()));
        jobs.push((bytes, base.standard()));
    }
    let us = pool().map(jobs, |_, &(bytes, cfg)| one_way_latency(cfg, bytes, rounds));
    sizes
        .iter()
        .enumerate()
        .map(|(k, &bytes)| LatencyPoint {
            bytes,
            cni_us: us[2 * k],
            std_us: us[2 * k + 1],
        })
        .collect()
}

fn one_way_latency(cfg: Config, bytes: usize, rounds: u32) -> f64 {
    let cfg = cfg.with_procs(2);
    let mut world = World::new(cfg);
    let warmup: u32 = 2;
    let total = warmup + rounds;
    let line_bytes = cfg.nic.cache_line_bytes as u32;
    let r = world.run(vec![
        Box::new(move |ctx| {
            for i in 0..total {
                // The first (warm-up) send pays the flush + DMA and binds
                // the buffer; steady-state sends reuse the same clean
                // buffer — the best case the paper plots.
                let dirty = if i == 0 { bytes as u32 / line_bytes } else { 0 };
                ctx.send_to(1, bytes as u32, Some(0x0100_0000), true, dirty);
                let _ = ctx.recv();
            }
        }),
        Box::new(move |ctx| {
            for i in 0..total {
                let _ = ctx.recv();
                let dirty = if i == 0 { bytes as u32 / line_bytes } else { 0 };
                ctx.send_to(0, bytes as u32, Some(0x0200_0000), true, dirty);
            }
        }),
    ]);
    // Round-trip time for the measured rounds, halved.
    // Total wall covers all rounds including warm-up; subtract the warm-up
    // cost by measuring with a second run of only the warm-up rounds.
    let mut warm_world = World::new(cfg);
    let w = warm_world.run(vec![
        Box::new(move |ctx| {
            for i in 0..warmup {
                let dirty = if i == 0 { bytes as u32 / line_bytes } else { 0 };
                ctx.send_to(1, bytes as u32, Some(0x0100_0000), true, dirty);
                let _ = ctx.recv();
            }
        }),
        Box::new(move |ctx| {
            for i in 0..warmup {
                let _ = ctx.recv();
                let dirty = if i == 0 { bytes as u32 / line_bytes } else { 0 };
                ctx.send_to(0, bytes as u32, Some(0x0200_0000), true, dirty);
            }
        }),
    ]);
    let steady = r.wall.saturating_sub(w.wall);
    steady.as_us_f64() / (rounds as f64) / 2.0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_jacobi() -> App {
        App::Jacobi { n: 16, iters: 3 }
    }

    #[test]
    fn speedup_curve_shape() {
        // Small but not degenerate: 64² has enough computation per
        // processor for parallelism to pay.
        let pts = speedup_curve(
            Config::paper_default(),
            App::Jacobi { n: 64, iters: 5 },
            &[2, 4],
        );
        assert_eq!(pts.len(), 2);
        assert!(pts[1].cni_speedup > pts[0].cni_speedup, "{pts:?}");
        for p in &pts {
            assert!(p.cni_speedup > 1.0, "{p:?}");
            assert!(p.cni_speedup >= p.std_speedup * 0.99, "{p:?}");
            assert!(p.hit_ratio_pct > 0.0 && p.hit_ratio_pct <= 100.0);
        }
    }

    #[test]
    fn latency_cni_beats_standard_and_grows_with_size() {
        let pts = latency_curve(Config::paper_default(), &[256, 4096], 3);
        assert!(pts[0].cni_us < pts[0].std_us);
        assert!(pts[1].cni_us < pts[1].std_us);
        assert!(pts[1].cni_us > pts[0].cni_us);
        assert!(pts[1].std_us > pts[0].std_us);
    }

    #[test]
    fn jumbo_cells_help() {
        let pct = jumbo_improvement_pct(Config::paper_default(), tiny_jacobi(), 2);
        assert!(pct > 0.0, "jumbo improvement {pct}%");
    }

    #[test]
    fn overhead_rows_are_consistent() {
        let (cni, std_) = overhead_table(Config::paper_default(), tiny_jacobi(), 2);
        assert!(cni.total > 0.0 && std_.total > 0.0);
        assert!(cni.synch_overhead <= std_.synch_overhead);
        for row in [cni, std_] {
            let sum = row.synch_overhead + row.synch_delay + row.computation;
            assert!((sum - row.total).abs() < row.total * 0.02 + 1e-6);
        }
    }
}
