//! Checkpointed runs, resume and what-if forking at the application level.
//!
//! This module glues the three layers of checkpoint/restore together:
//!
//! * `cni::snapshot` serializes the engine's complete state into a
//!   [`serde::Value`] tree and replays it into a fresh [`World`];
//! * `cni-snap` owns the crash-safe on-disk container (magic, version,
//!   length, CRC-32, atomic rename);
//! * this module adds the **application metadata** — which [`App`] and
//!   which [`Config`] produced the snapshot — so `cni-run --resume FILE`
//!   can rebuild the identical world and programs without the user
//!   re-supplying any flags.
//!
//! A snapshot file's payload is an object `{ "meta": {...}, "state": ... }`
//! where `meta` carries the app and full configuration and `state` is the
//! engine tree from [`World::take_snapshot`]. Resuming re-runs the app's
//! allocation sequence via [`crate::experiments::build_programs`] and hands the
//! state tree to [`World::resume_run`]; the result is byte-identical to
//! the uninterrupted run (`tests/checkpoint_apps.rs` pins this).
//!
//! Every error is returned pre-rendered as a rustc-style diagnostic
//! (`error: ...\n  --> path\n  = help: ...`) ready to print to stderr;
//! nothing in this module panics on corrupt input.

use crate::cholesky::CholeskyMatrix;
use crate::experiments::{build_programs, App};
use cni::{Config, RunReport, World};
use serde::{Deserialize, Map, Number, Serialize, Value};
use std::cell::RefCell;
use std::path::{Path, PathBuf};
use std::rc::Rc;

/// Render a rustc-style diagnostic for a snapshot problem that `cni-snap`'s
/// container layer did not itself produce (semantic errors: bad metadata,
/// mismatched world, failed replay).
pub fn render_semantic(path: &Path, msg: &str, help: &str) -> String {
    format!("error: {msg}\n  --> {}\n  = help: {help}\n", path.display())
}

fn app_to_value(app: App) -> Value {
    let mut m = Map::new();
    match app {
        App::Jacobi { n, iters } => {
            m.insert("app".into(), Value::String("jacobi".into()));
            m.insert("n".into(), Value::Number(Number::U64(n as u64)));
            m.insert("iters".into(), Value::Number(Number::U64(iters as u64)));
        }
        App::Water { molecules, steps } => {
            m.insert("app".into(), Value::String("water".into()));
            m.insert(
                "molecules".into(),
                Value::Number(Number::U64(molecules as u64)),
            );
            m.insert("steps".into(), Value::Number(Number::U64(steps as u64)));
        }
        App::Cholesky { matrix } => {
            m.insert("app".into(), Value::String("cholesky".into()));
            match matrix {
                CholeskyMatrix::Bcsstk14 => {
                    m.insert("matrix".into(), Value::String("bcsstk14".into()));
                }
                CholeskyMatrix::Bcsstk15 => {
                    m.insert("matrix".into(), Value::String("bcsstk15".into()));
                }
                CholeskyMatrix::Small { n, band } => {
                    m.insert("matrix".into(), Value::String("small".into()));
                    m.insert("n".into(), Value::Number(Number::U64(n as u64)));
                    m.insert("band".into(), Value::Number(Number::U64(band as u64)));
                }
                CholeskyMatrix::Mesh { rows, cols } => {
                    m.insert("matrix".into(), Value::String("mesh".into()));
                    m.insert("rows".into(), Value::Number(Number::U64(rows as u64)));
                    m.insert("cols".into(), Value::Number(Number::U64(cols as u64)));
                }
            }
        }
    }
    Value::Object(m)
}

fn app_from_value(v: &Value) -> Result<App, String> {
    let obj = v
        .as_object()
        .ok_or("snapshot app metadata is not an object")?;
    let u = |key: &str| -> Result<usize, String> {
        obj.get(key)
            .and_then(Value::as_u64)
            .map(|x| x as usize)
            .ok_or_else(|| format!("snapshot app metadata is missing `{key}`"))
    };
    match obj.get("app").and_then(Value::as_str) {
        Some("jacobi") => Ok(App::Jacobi {
            n: u("n")?,
            iters: u("iters")?,
        }),
        Some("water") => Ok(App::Water {
            molecules: u("molecules")?,
            steps: u("steps")?,
        }),
        Some("cholesky") => Ok(App::Cholesky {
            matrix: match obj.get("matrix").and_then(Value::as_str) {
                Some("bcsstk14") => CholeskyMatrix::Bcsstk14,
                Some("bcsstk15") => CholeskyMatrix::Bcsstk15,
                Some("small") => CholeskyMatrix::Small {
                    n: u("n")?,
                    band: u("band")?,
                },
                Some("mesh") => CholeskyMatrix::Mesh {
                    rows: u("rows")?,
                    cols: u("cols")?,
                },
                other => return Err(format!("unknown snapshot matrix {other:?}")),
            },
        }),
        other => Err(format!("unknown snapshot app {other:?}")),
    }
}

/// Wrap an engine state tree with the app/config metadata that makes a
/// snapshot self-describing.
fn payload_value(app: App, cfg: &Config, state: Value) -> Value {
    let mut meta = Map::new();
    meta.insert("app".into(), app_to_value(app));
    meta.insert("config".into(), cfg.to_value());
    let mut payload = Map::new();
    payload.insert("meta".into(), Value::Object(meta));
    payload.insert("state".into(), state);
    Value::Object(payload)
}

/// A snapshot read back from disk: the run's app, its full configuration
/// and the engine state tree, plus the path for diagnostics.
#[derive(Debug)]
pub struct Snapshot {
    /// Application the checkpointed run was executing.
    pub app: App,
    /// Complete configuration of the checkpointed run (topology, NIC
    /// personality, seed, fault plan — everything).
    pub config: Config,
    /// Simulation events the parent run had dispatched at the checkpoint.
    pub events: u64,
    state: Value,
    path: PathBuf,
}

/// Read and validate a snapshot file. Container-level problems (bad magic,
/// torn write, CRC mismatch, unknown version) and metadata problems all
/// come back as rendered diagnostics.
pub fn read_snapshot(path: &Path) -> Result<Snapshot, String> {
    let v = cni_snap::read_value(path).map_err(|e| e.render(&path.display().to_string()))?;
    let semantic = |msg: &str| {
        render_semantic(
            path,
            msg,
            "the container is intact but was not written by `cni-run --checkpoint-every`",
        )
    };
    let obj = v
        .as_object()
        .ok_or_else(|| semantic("snapshot payload is not an object"))?;
    let meta = obj
        .get("meta")
        .and_then(Value::as_object)
        .ok_or_else(|| semantic("snapshot payload has no `meta` object"))?;
    let app = meta
        .get("app")
        .ok_or_else(|| semantic("snapshot metadata has no `app`"))
        .and_then(|a| app_from_value(a).map_err(|e| semantic(&e)))?;
    let config = meta
        .get("config")
        .ok_or_else(|| semantic("snapshot metadata has no `config`"))
        .and_then(|c| {
            Config::from_value(c)
                .map_err(|e| semantic(&format!("snapshot configuration does not parse: {e}")))
        })?;
    let state = obj
        .get("state")
        .cloned()
        .ok_or_else(|| semantic("snapshot payload has no `state`"))?;
    let events = state
        .get("events_dispatched")
        .and_then(Value::as_u64)
        .unwrap_or(0);
    Ok(Snapshot {
        app,
        config,
        events,
        state,
        path: path.to_path_buf(),
    })
}

impl Snapshot {
    /// Resume the checkpointed run under its own configuration and run it
    /// to completion. The returned report is byte-identical (as JSON) to
    /// the uninterrupted run's.
    pub fn resume(&self) -> Result<RunReport, String> {
        self.resume_with(self.config)
    }

    /// Resume under `cfg` instead of the stored configuration — the
    /// `--fork-at` path. Topology-affecting fields (processor count, NIC
    /// personality, page size) must match the snapshot; the fault plan is
    /// the supported what-if axis and may differ freely (subject to the
    /// engine's faulty-snapshot-needs-a-faulty-plan rule).
    pub fn resume_with(&self, cfg: Config) -> Result<RunReport, String> {
        let mut world = World::new(cfg);
        let progs = build_programs(&mut world, self.app);
        world.resume_run(&self.state, progs).map_err(|e| {
            render_semantic(
                &self.path,
                &format!("cannot resume: {e}"),
                "the snapshot is intact but does not match this run's configuration",
            )
        })
    }
}

/// Result of a checkpointed run: the final report plus every snapshot
/// file written, in the order they were taken.
#[derive(Debug)]
pub struct CheckpointedRun {
    /// The run's report — byte-identical to an un-checkpointed run.
    pub report: RunReport,
    /// Paths of the snapshot files written, oldest first.
    pub snapshots: Vec<PathBuf>,
}

/// File name of the checkpoint taken after `events` dispatched events.
/// Zero-padded so lexical order is chronological order.
pub fn snapshot_file_name(events: u64) -> String {
    format!("ck-{events:012}.cnisnap")
}

/// The newest snapshot file in `dir` (by the chronological file name from
/// [`snapshot_file_name`]), if any.
pub fn newest_snapshot(dir: &Path) -> Option<PathBuf> {
    let mut best: Option<PathBuf> = None;
    for entry in std::fs::read_dir(dir).ok()?.flatten() {
        let p = entry.path();
        let name = p.file_name()?.to_str()?.to_string();
        if name.starts_with("ck-")
            && name.ends_with(".cnisnap")
            && best.as_ref().is_none_or(|b| p > *b)
        {
            best = Some(p);
        }
    }
    best
}

/// Run `app` under `cfg`, writing a crash-safe snapshot into `dir` every
/// `every` dispatched simulation events. Snapshots land as
/// `dir/ck-<events>.cnisnap` via temp-file + rename, so an interrupted run
/// leaves only complete snapshots behind.
pub fn run_app_checkpointed(
    cfg: Config,
    app: App,
    every: u64,
    dir: &Path,
) -> Result<CheckpointedRun, String> {
    std::fs::create_dir_all(dir).map_err(|e| {
        render_semantic(
            dir,
            &format!("cannot create checkpoint directory: {e}"),
            "check that the parent directory exists and is writable",
        )
    })?;
    let mut world = World::new(cfg);
    world.enable_journal();
    let progs = build_programs(&mut world, app);
    let written: Rc<RefCell<Vec<PathBuf>>> = Rc::new(RefCell::new(Vec::new()));
    let failed: Rc<RefCell<Option<String>>> = Rc::new(RefCell::new(None));
    let (written_s, failed_s) = (written.clone(), failed.clone());
    let dir_s = dir.to_path_buf();
    world.set_checkpoint(
        every,
        Box::new(move |w: &World| {
            // After one write fails, stop checkpointing; the run itself
            // still completes and the error is reported at the end.
            if failed_s.borrow().is_some() {
                return;
            }
            let payload = payload_value(app, w.config(), w.take_snapshot());
            let path = dir_s.join(snapshot_file_name(w.events_dispatched()));
            match cni_snap::write_value(&path, &payload) {
                Ok(()) => written_s.borrow_mut().push(path),
                Err(e) => {
                    *failed_s.borrow_mut() = Some(e.render(&path.display().to_string()));
                }
            }
        }),
    );
    let report = world.run(progs);
    drop(world);
    if let Some(e) = failed.borrow_mut().take() {
        return Err(e);
    }
    let snapshots = Rc::try_unwrap(written)
        .expect("checkpoint sink dropped with world")
        .into_inner();
    Ok(CheckpointedRun { report, snapshots })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn app_metadata_round_trips() {
        for app in [
            App::Jacobi { n: 64, iters: 5 },
            App::Water {
                molecules: 27,
                steps: 1,
            },
            App::Cholesky {
                matrix: CholeskyMatrix::Bcsstk15,
            },
        ] {
            let v = app_to_value(app);
            let back = app_from_value(&v).unwrap();
            assert_eq!(format!("{app:?}"), format!("{back:?}"));
        }
    }

    #[test]
    fn bad_app_metadata_errors() {
        assert!(app_from_value(&Value::Null).is_err());
        let mut m = Map::new();
        m.insert("app".into(), Value::String("doom".into()));
        assert!(app_from_value(&Value::Object(m)).is_err());
        let mut m = Map::new();
        m.insert("app".into(), Value::String("jacobi".into()));
        let err = app_from_value(&Value::Object(m)).unwrap_err();
        assert!(err.contains("`n`"), "{err}");
    }

    #[test]
    fn snapshot_file_names_sort_chronologically() {
        assert!(snapshot_file_name(999) < snapshot_file_name(1000));
        assert!(snapshot_file_name(5) < snapshot_file_name(40));
    }
}
