//! Parallel sparse Cholesky — the paper's fine-grained application.
//!
//! "Cholesky is a fine-grained application that factorizes a sparse
//! positive-definite matrix. Each processor modifies a column or a set of
//! columns called supernodes of a matrix. Access to the columns and
//! supernodes are synchronized through column locks. Columns or supernodes
//! are allocated to a processor using the bag of tasks paradigm. Pages
//! tend to move from the releaser to the acquirer leading to many access
//! misses when an invalidate protocol is used; thus caching receive
//! buffers helped performance a great deal. Also, one page usually
//! contains many columns, so concurrent write sharing and the use of
//! write notices increases the parallelism and reduces the amount of data
//! exchanged." (§3.1)
//!
//! Supernodal fan-out (right-looking): columns are grouped into
//! *fundamental supernodes* ([`SymbolicFactor::supernodes`]); a supernode
//! whose pending external updates hit zero becomes a task in the shared
//! bag. The worker that pops it factorises its columns internally under
//! the supernode's lock, then applies its updates to each later supernode
//! under that target's lock, retiring one dependency per source supernode.
//! The factor is stored packed in shared pages (many columns per page →
//! concurrent write sharing); the read-only symbolic structure is
//! replicated to every node at start-up, as a real implementation would.

use crate::sparse::{SparseSpd, SymbolicFactor};
use cni::{LockId, Program, VAddr, World};
use cni_dsm::access;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Cycles charged per multiply-add in `cdiv`/`cmod`. Calibrated against
/// the paper's Table 4, whose 21.5·10⁹ computation cycles for bcsstk14
/// imply ~200 cycles per sparse multiply-add on the 166 MHz host —
/// indexed gather/scatter sparse kernels of the era ran far below peak
/// (see EXPERIMENTS.md calibration).
pub const CYCLES_PER_FLOP: u64 = 200;
/// Initial backoff computation between empty bag polls; doubles per
/// consecutive empty poll up to [`POLL_BACKOFF_MAX_CYCLES`] (under lazy
/// release consistency a waiter must re-acquire to observe the bag, so
/// polite backoff is essential).
pub const POLL_BACKOFF_CYCLES: u64 = 20_000;
/// Upper bound of the exponential poll backoff.
pub const POLL_BACKOFF_MAX_CYCLES: u64 = 1_280_000;
/// Largest supernode (columns) a single task may hold; small enough to
/// keep the bag busy, large enough to amortise locks.
pub const MAX_SUPERNODE: usize = 16;

/// Cholesky workload parameters.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub enum CholeskyMatrix {
    /// The bcsstk14-like matrix (n = 1806).
    Bcsstk14,
    /// The bcsstk15-like matrix (n = 3948).
    Bcsstk15,
    /// A small banded matrix for tests: (n, band). Note: banded matrices
    /// have chain-shaped elimination trees with almost no task
    /// parallelism — use [`CholeskyMatrix::Mesh`] when a test needs
    /// realistic parallel structure.
    Small {
        /// Dimension.
        n: usize,
        /// Half bandwidth.
        band: usize,
    },
    /// A small nested-dissection FE mesh for tests: rows × cols unknowns.
    Mesh {
        /// Grid rows.
        rows: usize,
        /// Grid columns.
        cols: usize,
    },
}

impl CholeskyMatrix {
    /// Instantiate the matrix (seeded; deterministic).
    pub fn build(self, seed: u64) -> SparseSpd {
        match self {
            CholeskyMatrix::Bcsstk14 => SparseSpd::bcsstk14_like(seed),
            CholeskyMatrix::Bcsstk15 => SparseSpd::bcsstk15_like(seed),
            CholeskyMatrix::Small { n, band } => SparseSpd::generate(n, band, 0.8, 2, seed),
            CholeskyMatrix::Mesh { rows, cols } => SparseSpd::fe_mesh_nd(rows, cols, 2, 0.9, seed),
        }
    }
}

/// Shared-memory layout of the factorisation state.
#[derive(Clone, Copy, Debug)]
pub struct CholeskyLayout {
    /// Packed factor values (`SymbolicFactor::total_slots` doubles).
    pub factor: VAddr,
    /// Pending-update counters, one u64 per supernode.
    pub counters: VAddr,
    /// Bag of tasks: [len, done, items...].
    pub bag: VAddr,
    /// Matrix dimension.
    pub n: usize,
    /// Supernode count.
    pub snodes: usize,
}

impl CholeskyLayout {
    fn slot(self, s: usize) -> VAddr {
        self.factor.add((s * 8) as u64)
    }
    fn counter(self, t: usize) -> VAddr {
        self.counters.add((t * 8) as u64)
    }
    fn bag_len(self) -> VAddr {
        self.bag
    }
    fn bag_done(self) -> VAddr {
        self.bag.add(8)
    }
    fn bag_item(self, k: usize) -> VAddr {
        self.bag.add((2 + k) as u64 * 8)
    }
}

/// The lock guarding supernode `t`.
fn snode_lock(t: usize) -> LockId {
    LockId(t as u32)
}

/// The lock guarding the bag of tasks.
fn bag_lock(snodes: usize) -> LockId {
    LockId(snodes as u32)
}

/// Supernode dependency metadata derived from the symbolic factorisation:
/// shared read-only by all workers.
pub struct SnPlan {
    /// Column ranges.
    pub ranges: Vec<(usize, usize)>,
    /// Column → supernode index.
    pub snode_of: Vec<usize>,
    /// External target supernodes of each source supernode, ascending.
    pub targets: Vec<Vec<usize>>,
    /// Pending external source supernodes per target.
    pub counts: Vec<u32>,
}

impl SnPlan {
    /// Build the plan from the symbolic factorisation.
    pub fn new(sym: &SymbolicFactor, max_size: usize) -> Self {
        let ranges = sym.amalgamated_panels(max_size);
        let mut snode_of = vec![0usize; sym.n];
        for (t, &(lo, hi)) in ranges.iter().enumerate() {
            snode_of[lo..hi].fill(t);
        }
        let mut targets: Vec<Vec<usize>> = Vec::with_capacity(ranges.len());
        let mut counts = vec![0u32; ranges.len()];
        for (s, &(lo, hi)) in ranges.iter().enumerate() {
            let mut tg: Vec<usize> = (lo..hi)
                .flat_map(|j| sym.structs[j].iter().copied())
                .filter(|&i| snode_of[i] != s)
                .map(|i| snode_of[i])
                .collect();
            tg.sort_unstable();
            tg.dedup();
            for &t in &tg {
                counts[t] += 1;
            }
            targets.push(tg);
        }
        SnPlan {
            snode_of,
            targets,
            counts,
            ranges,
        }
    }
}

/// Allocate shared state and build one program per processor.
///
/// The symbolic factorisation and supernode plan are computed once and
/// shared read-only (`Arc`), modelling the replicated index metadata of a
/// real code. `verify` adds a post-run read pass on processor 0 so tests
/// can collect the factor.
pub fn programs(
    world: &mut World,
    matrix: CholeskyMatrix,
    seed: u64,
    verify: bool,
) -> (CholeskyLayout, Arc<SymbolicFactor>, Vec<Program>) {
    let a = Arc::new(matrix.build(seed));
    let sym = Arc::new(SymbolicFactor::analyze(&a));
    let plan = Arc::new(SnPlan::new(&sym, MAX_SUPERNODE));
    let n = a.n;
    let snodes = plan.ranges.len();
    let procs = world.config().procs;
    let layout = CholeskyLayout {
        factor: world.alloc(sym.total_slots * 8),
        counters: world.alloc(snodes * 8),
        bag: world.alloc((snodes + 2) * 8),
        n,
        snodes,
    };
    let progs = (0..procs)
        .map(|p| -> Program {
            let a = a.clone();
            let sym = sym.clone();
            let plan = plan.clone();
            Box::new(move |ctx| {
                // --- distributed initialisation --------------------------------
                for (t, &(lo, hi)) in plan.ranges.iter().enumerate() {
                    if t % procs != p {
                        continue;
                    }
                    for j in lo..hi {
                        ctx.write_f64(layout.slot(sym.diag_slot(j)), a.diag[j]);
                        for pos in 0..sym.structs[j].len() {
                            ctx.write_f64(layout.slot(sym.offsets[j] + 1 + pos), 0.0);
                        }
                        for (k, &i) in a.rows[j].iter().enumerate() {
                            ctx.write_f64(layout.slot(sym.slot(i, j)), a.vals[j][k]);
                        }
                    }
                    ctx.write_u64(layout.counter(t), plan.counts[t] as u64);
                }
                if p == 0 {
                    // Seed the bag with the leaf supernodes.
                    let mut len = 0u64;
                    for t in 0..snodes {
                        if plan.counts[t] == 0 {
                            ctx.write_u64(layout.bag_item(len as usize), t as u64);
                            len += 1;
                        }
                    }
                    ctx.write_u64(layout.bag_len(), len);
                    ctx.write_u64(layout.bag_done(), 0);
                }
                ctx.barrier();

                // --- supernodal fan-out factorisation ---------------------------
                let mut backoff = POLL_BACKOFF_CYCLES;
                loop {
                    ctx.acquire(bag_lock(snodes));
                    let done = ctx.read_u64(layout.bag_done());
                    if done == snodes as u64 {
                        ctx.release(bag_lock(snodes));
                        break;
                    }
                    let len = ctx.read_u64(layout.bag_len());
                    let task = if len > 0 {
                        let t = ctx.read_u64(layout.bag_item(len as usize - 1));
                        ctx.write_u64(layout.bag_len(), len - 1);
                        Some(t as usize)
                    } else {
                        None
                    };
                    ctx.release(bag_lock(snodes));
                    let Some(s) = task else {
                        ctx.backoff(backoff);
                        backoff = (backoff * 2).min(POLL_BACKOFF_MAX_CYCLES);
                        continue;
                    };
                    backoff = POLL_BACKOFF_CYCLES;
                    let (lo, hi) = plan.ranges[s];

                    // Internal factorisation of supernode s under its own
                    // lock: cdiv each column, then update the later columns
                    // *within* the supernode. Keep the finished columns for
                    // the external updates.
                    ctx.acquire(snode_lock(s));
                    let mut cols: Vec<Vec<(usize, f64)>> = Vec::with_capacity(hi - lo);
                    let mut flops = 0u64;
                    for j in lo..hi {
                        let dj = ctx.read_f64(layout.slot(sym.diag_slot(j)));
                        assert!(dj > 0.0, "lost positive definiteness at column {j}");
                        let root = dj.sqrt();
                        ctx.write_f64(layout.slot(sym.diag_slot(j)), root);
                        let st = &sym.structs[j];
                        let mut col = Vec::with_capacity(st.len());
                        for &i in st {
                            let sl = sym.slot(i, j);
                            let v = ctx.read_f64(layout.slot(sl)) / root;
                            ctx.write_f64(layout.slot(sl), v);
                            col.push((i, v));
                        }
                        flops += st.len() as u64;
                        // Internal cmods: targets k within this supernode.
                        for (ki, &(k, ljk)) in col.iter().enumerate() {
                            if k >= hi {
                                break;
                            }
                            let ds = layout.slot(sym.diag_slot(k));
                            let d = ctx.read_f64(ds);
                            ctx.write_f64(ds, d - ljk * ljk);
                            for &(i, lij) in &col[ki + 1..] {
                                let sl = layout.slot(sym.slot(i, k));
                                let v = ctx.read_f64(sl);
                                ctx.write_f64(sl, v - lij * ljk);
                            }
                            flops += (col.len() - ki) as u64;
                        }
                        cols.push(col);
                    }
                    ctx.compute(flops * CYCLES_PER_FLOP);
                    ctx.release(snode_lock(s));

                    // External updates: one lock hold per target supernode,
                    // applying every contribution from this source.
                    let mut ready = Vec::new();
                    for &t in &plan.targets[s] {
                        let (tlo, thi) = plan.ranges[t];
                        ctx.acquire(snode_lock(t));
                        let mut flops = 0u64;
                        for col in &cols {
                            // Contributions to columns k in [tlo, thi).
                            let from = col.partition_point(|&(i, _)| i < tlo);
                            for (ki, &(k, ljk)) in col.iter().enumerate().skip(from) {
                                if k >= thi {
                                    break;
                                }
                                let ds = layout.slot(sym.diag_slot(k));
                                let d = ctx.read_f64(ds);
                                ctx.write_f64(ds, d - ljk * ljk);
                                for &(i, lij) in &col[ki + 1..] {
                                    let sl = layout.slot(sym.slot(i, k));
                                    let v = ctx.read_f64(sl);
                                    ctx.write_f64(sl, v - lij * ljk);
                                }
                                flops += (col.len() - ki) as u64;
                            }
                        }
                        ctx.compute(flops * CYCLES_PER_FLOP);
                        let ca = layout.counter(t);
                        let c = ctx.read_u64(ca) - 1;
                        ctx.write_u64(ca, c);
                        ctx.release(snode_lock(t));
                        if c == 0 {
                            ready.push(t);
                        }
                    }

                    // Publish the finished supernode and newly ready tasks.
                    ctx.acquire(bag_lock(snodes));
                    let done = ctx.read_u64(layout.bag_done()) + 1;
                    ctx.write_u64(layout.bag_done(), done);
                    let mut len = ctx.read_u64(layout.bag_len());
                    for &t in &ready {
                        ctx.write_u64(layout.bag_item(len as usize), t as u64);
                        len += 1;
                    }
                    ctx.write_u64(layout.bag_len(), len);
                    ctx.release(bag_lock(snodes));
                }
                ctx.barrier();
                if verify && p == 0 {
                    for s in 0..sym.total_slots {
                        let _ = ctx.read_f64(layout.slot(s));
                    }
                }
            })
        })
        .collect();
    (layout, sym, progs)
}

/// Read the packed factor out of the cluster after a run: any valid copy
/// of each page is current once every processor has crossed the final
/// barrier (run with `verify = true` so node 0 holds coherent copies).
pub fn collect_factor(world: &World, sym: &SymbolicFactor, layout: CholeskyLayout) -> Vec<f64> {
    let page_bytes = world.config().page_bytes;
    let mut out = vec![f64::NAN; sym.total_slots];
    for (s, v) in out.iter_mut().enumerate() {
        let addr = layout.factor.add((s * 8) as u64);
        let page = addr.page(page_bytes);
        let word = addr.word(page_bytes);
        let mut best: Option<u64> = None;
        for p in 0..world.config().procs {
            if let Some(h) = world.space(p).try_page(page) {
                if h.flags.state() != access::INVALID {
                    best = Some(h.frame.load(word));
                    break;
                }
            }
        }
        *v = f64::from_bits(best.unwrap_or_else(|| panic!("no valid copy of slot {s}")));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_name_spaces_do_not_collide() {
        assert_ne!(snode_lock(5), bag_lock(6));
        assert_eq!(bag_lock(6), LockId(6));
    }

    #[test]
    fn small_matrix_builds() {
        let m = CholeskyMatrix::Small { n: 32, band: 4 }.build(7);
        assert_eq!(m.n, 32);
    }

    #[test]
    fn plan_counts_match_targets() {
        let a = CholeskyMatrix::Small { n: 64, band: 5 }.build(3);
        let sym = SymbolicFactor::analyze(&a);
        let plan = SnPlan::new(&sym, MAX_SUPERNODE);
        let mut recount = vec![0u32; plan.ranges.len()];
        for tg in &plan.targets {
            for &t in tg {
                recount[t] += 1;
            }
        }
        assert_eq!(recount, plan.counts);
        // Targets are strictly later supernodes.
        for (s, tg) in plan.targets.iter().enumerate() {
            for &t in tg {
                assert!(t > s, "supernode {s} targets {t}");
            }
        }
    }

    #[test]
    fn snode_of_is_consistent_with_ranges() {
        let a = CholeskyMatrix::Small { n: 48, band: 4 }.build(9);
        let sym = SymbolicFactor::analyze(&a);
        let plan = SnPlan::new(&sym, 8);
        for (t, &(lo, hi)) in plan.ranges.iter().enumerate() {
            for j in lo..hi {
                assert_eq!(plan.snode_of[j], t);
            }
        }
    }
}
