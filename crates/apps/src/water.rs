//! Water — the paper's medium-grained application (after the SPLASH
//! code).
//!
//! "It simulates the molecular behavior of water, and was run with the
//! input sizes of 64, 216 and 343 molecules for 2 steps. In each step,
//! the various intra- and inter-molecular forces affecting the molecule
//! are calculated with respect to other molecules and then the parameters
//! of the molecule are updated. The original algorithm was modified to
//! postpone the updates until the end of an iteration as in reference 3.
//! Synchronization is performed by (1) acquiring a lock for updating the
//! parameters of a molecule and (2) through barriers." (§3.1)
//!
//! We reproduce the sharing and synchronisation structure with a
//! simplified O(m²) pairwise force model (the SPLASH chemistry is not
//! redistributable and does not affect the communication pattern): each
//! processor owns a block of molecules, computes pair forces against all
//! higher-numbered molecules while *accumulating contributions locally*
//! (the postponed-update modification), then applies the accumulated
//! contributions under per-molecule locks, crosses a barrier, and
//! integrates positions of its own molecules.

use cni::{LockId, Program, VAddr, World};
use serde::{Deserialize, Serialize};

/// Cycles charged per molecule pair interaction. SPLASH Water evaluates a
/// multi-site intermolecular potential (9 site pairs, square roots,
/// erfc-style terms) per molecule pair; the paper's Table 3 implies
/// ~2.9·10⁹ computation cycles for 216 molecules × 2 steps ≈ 6·10⁴ cycles
/// per pair on the 166 MHz host (see EXPERIMENTS.md, calibration).
pub const CYCLES_PER_PAIR: u64 = 4_000;
/// Cycles charged per molecule predictor-corrector integration.
pub const CYCLES_PER_UPDATE: u64 = 1_500;

/// Water workload parameters.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct WaterParams {
    /// Molecule count (the paper uses 64, 216, 343 — perfect cubes).
    pub molecules: usize,
    /// Time steps (the paper runs 2).
    pub steps: usize,
    /// After the run, have processor 0 read all positions so a test can
    /// collect them (off for measured runs).
    pub verify: bool,
}

impl WaterParams {
    /// The paper's configuration for `molecules`.
    pub fn paper(molecules: usize) -> Self {
        WaterParams {
            molecules,
            steps: 2,
            verify: false,
        }
    }
}

/// Doubles per molecule record. SPLASH Water keeps a ~350-byte record per
/// molecule (three atoms × positions/derivatives/forces); we reproduce the
/// footprint so the page-level sharing pattern (a few molecules per 2 KB
/// page, some false sharing at larger pages) matches the paper's.
pub const MOL_STRIDE: usize = 43;

/// Shared-memory layout: positions and forces, one padded record per
/// molecule.
#[derive(Clone, Copy, Debug)]
pub struct WaterLayout {
    /// Position records, `MOL_STRIDE` doubles per molecule.
    pub pos: VAddr,
    /// Force records, `MOL_STRIDE` doubles per molecule.
    pub force: VAddr,
    /// Molecule count.
    pub m: usize,
}

impl WaterLayout {
    /// Address of dimension `d` of molecule `mol`'s position.
    pub fn pos_at(self, mol: usize, d: usize) -> VAddr {
        self.pos.add(((mol * MOL_STRIDE + d) * 8) as u64)
    }
    /// Address of dimension `d` of molecule `mol`'s accumulated force.
    pub fn force_at(self, mol: usize, d: usize) -> VAddr {
        self.force.add(((mol * MOL_STRIDE + d) * 8) as u64)
    }
}

/// Deterministic initial positions on a jittered cubic lattice — the same
/// function drives the sequential reference.
pub fn initial_position(mol: usize, d: usize, m: usize) -> f64 {
    let side = (m as f64).cbrt().round() as usize;
    let c = [mol % side, (mol / side) % side, mol / (side * side)];
    // Fixed-point jitter keeps it deterministic without a generator.
    let jitter = ((mol as u64 * 2654435761 + d as u64 * 40503) % 1000) as f64 / 5000.0;
    c[d] as f64 + jitter
}

/// The simplified pair force along dimension `d` (antisymmetric).
pub fn pair_force(pi: [f64; 3], pj: [f64; 3], d: usize) -> f64 {
    let dx = [pi[0] - pj[0], pi[1] - pj[1], pi[2] - pj[2]];
    let r2 = dx[0] * dx[0] + dx[1] * dx[1] + dx[2] * dx[2] + 0.01;
    // Truncated soft potential: repulsive near, vanishing far.
    let inv = 1.0 / (r2 * r2);
    dx[d] * inv
}

/// How many cyclic neighbours each molecule pairs with (half shell).
pub fn half_shell(m: usize) -> usize {
    m / 2
}

/// The molecule range `[lo, hi)` owned by processor `p`.
pub fn block(m: usize, procs: usize, p: usize) -> (usize, usize) {
    let per = m / procs;
    let extra = m % procs;
    let lo = p * per + p.min(extra);
    (lo, lo + per + usize::from(p < extra))
}

/// Allocate shared state and build one program per processor.
pub fn programs(world: &mut World, params: WaterParams) -> (WaterLayout, Vec<Program>) {
    let m = params.molecules;
    let procs = world.config().procs;
    // First-touch placement: molecule state lives with its owner block.
    let page_bytes = world.config().page_bytes;
    let mol_owner = move |i: usize| -> usize {
        let mol = ((i * page_bytes) / (MOL_STRIDE * 8)).min(m - 1);
        (0..procs)
            .find(|&p| {
                let (lo, hi) = block(m, procs, p);
                mol >= lo && mol < hi
            })
            .expect("molecule has an owner")
    };
    let layout = WaterLayout {
        pos: world.alloc_with_homes(m * MOL_STRIDE * 8, mol_owner),
        force: world.alloc_with_homes(m * MOL_STRIDE * 8, mol_owner),
        m,
    };
    let progs = (0..procs)
        .map(|p| -> Program {
            Box::new(move |ctx| {
                let (lo, hi) = block(m, procs, p);
                // Initialise my molecules.
                for mol in lo..hi {
                    for d in 0..3 {
                        ctx.write_f64(layout.pos_at(mol, d), initial_position(mol, d, m));
                        ctx.write_f64(layout.force_at(mol, d), 0.0);
                    }
                }
                ctx.barrier();
                let mut local = vec![0.0f64; m * 3];
                for _step in 0..params.steps {
                    // Phase 1: pair forces, postponed updates. The cyclic
                    // half-shell: molecule i interacts with the next ⌈m/2⌉
                    // molecules (mod m), so every unordered pair is computed
                    // exactly once and the work is balanced across blocks
                    // (SPLASH's decomposition; a triangular loop would give
                    // the first block ~an order of magnitude more pairs).
                    local.iter_mut().for_each(|v| *v = 0.0);
                    for i in lo..hi {
                        let pi = [
                            ctx.read_f64(layout.pos_at(i, 0)),
                            ctx.read_f64(layout.pos_at(i, 1)),
                            ctx.read_f64(layout.pos_at(i, 2)),
                        ];
                        for dj in 1..=half_shell(m) {
                            if m.is_multiple_of(2) && dj == m / 2 && i >= m / 2 {
                                continue; // opposite pair already counted
                            }
                            let j = (i + dj) % m;
                            let pj = [
                                ctx.read_f64(layout.pos_at(j, 0)),
                                ctx.read_f64(layout.pos_at(j, 1)),
                                ctx.read_f64(layout.pos_at(j, 2)),
                            ];
                            for d in 0..3 {
                                let f = pair_force(pi, pj, d);
                                local[i * 3 + d] += f;
                                local[j * 3 + d] -= f;
                            }
                            ctx.compute(CYCLES_PER_PAIR);
                        }
                    }
                    // Phase 2: apply postponed updates under per-molecule
                    // locks. Start at this processor's own block and wrap
                    // around — the SPLASH stagger that keeps processors from
                    // convoying on the same lock sequence.
                    for step in 0..m {
                        let mol = (lo + step) % m;
                        let any = (0..3).any(|d| local[mol * 3 + d] != 0.0);
                        if !any {
                            continue;
                        }
                        ctx.acquire(LockId(mol as u32));
                        for d in 0..3 {
                            let a = layout.force_at(mol, d);
                            let cur = ctx.read_f64(a);
                            ctx.write_f64(a, cur + local[mol * 3 + d]);
                        }
                        ctx.release(LockId(mol as u32));
                    }
                    ctx.barrier();
                    // Phase 3: integrate my own molecules, reset forces.
                    for mol in lo..hi {
                        for d in 0..3 {
                            let f = ctx.read_f64(layout.force_at(mol, d));
                            let pa = layout.pos_at(mol, d);
                            let x = ctx.read_f64(pa);
                            ctx.write_f64(pa, x + 0.0001 * f);
                            ctx.write_f64(layout.force_at(mol, d), 0.0);
                        }
                        ctx.compute(CYCLES_PER_UPDATE);
                    }
                    ctx.barrier();
                }
                if params.verify && p == 0 {
                    for mol in 0..m {
                        for d in 0..3 {
                            let _ = ctx.read_f64(layout.pos_at(mol, d));
                        }
                    }
                }
            })
        })
        .collect();
    (layout, progs)
}

/// Sequential reference returning final positions.
pub fn reference(params: WaterParams) -> Vec<f64> {
    let m = params.molecules;
    let mut pos: Vec<f64> = (0..m * 3)
        .map(|k| initial_position(k / 3, k % 3, m))
        .collect();
    let mut force = vec![0.0f64; m * 3];
    for _ in 0..params.steps {
        force.iter_mut().for_each(|v| *v = 0.0);
        for i in 0..m {
            let pi = [pos[i * 3], pos[i * 3 + 1], pos[i * 3 + 2]];
            for dj in 1..=half_shell(m) {
                if m.is_multiple_of(2) && dj == m / 2 && i >= m / 2 {
                    continue;
                }
                let j = (i + dj) % m;
                let pj = [pos[j * 3], pos[j * 3 + 1], pos[j * 3 + 2]];
                for d in 0..3 {
                    let f = pair_force(pi, pj, d);
                    force[i * 3 + d] += f;
                    force[j * 3 + d] -= f;
                }
            }
        }
        for k in 0..m * 3 {
            pos[k] += 0.0001 * force[k];
        }
    }
    pos
}

/// Every unordered pair appears exactly once in the cyclic half-shell.
#[cfg(test)]
fn half_shell_pairs(m: usize) -> Vec<(usize, usize)> {
    let mut pairs = Vec::new();
    for i in 0..m {
        for dj in 1..=half_shell(m) {
            if m.is_multiple_of(2) && dj == m / 2 && i >= m / 2 {
                continue;
            }
            let j = (i + dj) % m;
            pairs.push((i.min(j), i.max(j)));
        }
    }
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pair_force_is_antisymmetric() {
        let a = [0.1, 0.2, 0.3];
        let b = [1.0, -0.5, 0.25];
        for d in 0..3 {
            let fab = pair_force(a, b, d);
            let fba = pair_force(b, a, d);
            assert!((fab + fba).abs() < 1e-12);
        }
    }

    #[test]
    fn half_shell_covers_each_pair_once() {
        for m in [7usize, 8, 27, 64] {
            let mut pairs = half_shell_pairs(m);
            pairs.sort_unstable();
            let expect: Vec<(usize, usize)> = (0..m)
                .flat_map(|i| ((i + 1)..m).map(move |j| (i, j)))
                .collect();
            assert_eq!(pairs, expect, "m={m}");
        }
    }

    #[test]
    fn blocks_partition_molecules() {
        for m in [64usize, 216, 343] {
            for procs in [1usize, 2, 8, 32] {
                let mut total = 0;
                for p in 0..procs {
                    let (lo, hi) = block(m, procs, p);
                    total += hi - lo;
                }
                assert_eq!(total, m);
            }
        }
    }

    #[test]
    fn reference_moves_molecules() {
        let p = WaterParams {
            molecules: 27,
            steps: 2,
            verify: false,
        };
        let end = reference(p);
        let start: Vec<f64> = (0..27 * 3)
            .map(|k| initial_position(k / 3, k % 3, 27))
            .collect();
        assert_ne!(start, end);
        assert!(end.iter().all(|v| v.is_finite()));
    }
}
