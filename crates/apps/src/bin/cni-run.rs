//! `cni-run` — command-line driver for the CNI cluster simulator.
//!
//! ```text
//! cni-run --app jacobi --n 256 --iters 25 --procs 8 --nic cni
//! cni-run --app water --molecules 216 --procs 16 --nic standard
//! cni-run --app cholesky --matrix bcsstk14 --procs 8 --page-bytes 4096
//! cni-run --app jacobi --n 128 --procs 8 --compare   # CNI vs standard
//! ```
//!
//! Prints the run report (completion time, overhead breakdown, network
//! cache hit ratio, NIC counters) as text, or JSON with `--json`.
//!
//! With `--trace <path>` the run records simulation events (queue
//! dispatches, DMA transfers, Message-Cache traffic, PATHFINDER
//! classifications, DSM protocol actions, periodic metrics samples) and
//! exports them as a Chrome trace-event file (load in Perfetto /
//! `chrome://tracing`) or as JSONL.
//!
//! With `--obs` the run additionally threads causal span ids through
//! every PDU lifecycle and prints the `cni-obs` analysis: per-message
//! stage decomposition, the barrier interval's critical path and the
//! run-wide utilization profile. A JSONL trace written under `--obs`
//! can be re-analysed offline with `cni-analyze`.

use cni::{
    kind_name, BrownoutWindow, Config, FaultPlan, NicKind, RunReport, SimTime, TraceSink,
    REPORT_VERSION,
};
use cni_apps::checkpoint::{newest_snapshot, read_snapshot, run_app_checkpointed};
use cni_apps::cholesky::CholeskyMatrix;
use cni_apps::experiments::{run_app, run_app_obs, run_app_traced, App};
use cni_batch::Pool;
use cni_trace::export::{job_trace_path, write_chrome, write_jsonl};
use std::collections::HashMap;
use std::io::BufWriter;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!(
        "usage: cni-run --app <jacobi|water|cholesky|latency> [options]\n\
         \x20      cni-run --sweep <spec.json> [--jobs N] [options]\n\
         \n\
         sweep mode (parallel batch over a JSON run list):\n\
           --sweep PATH        JSON array of run objects; see docs of\n\
                               cni_apps::sweep for the format\n\
           --jobs N            worker threads (default: $CNI_JOBS, else\n\
                               the machine's available parallelism)\n\
           --out PATH          also write the batch report JSON to PATH\n\
           --trace-dir DIR     record each run's events to its own file\n\
                               DIR/<index>-<label>.<ext>\n\
           --resume-dir DIR    persist per-job reports under DIR and skip\n\
                               jobs a previous (interrupted) sweep already\n\
                               completed; with --checkpoint-every, partial\n\
                               jobs resume from their newest checkpoint\n\
           --json              print the batch report as JSON\n\
         \n\
         checkpoint / restore (single-run mode):\n\
           --checkpoint-every N  write a crash-safe snapshot after every N\n\
                               simulation events as DIR/ck-<events>.cnisnap\n\
           --checkpoint-dir DIR  snapshot directory (default cni-checkpoints)\n\
           --resume PATH       resume a run from a snapshot; the app and\n\
                               topology come from the snapshot, not flags.\n\
                               The finished report is byte-identical to the\n\
                               uninterrupted run's\n\
           --fork-at PATH      like --resume but a what-if branch: the\n\
                               command line's fault flags replace the\n\
                               snapshot's fault plan from this point on\n\
           --brownout L:S:E    with --fork-at: total cell loss on link L\n\
                               from S to E (virtual microseconds)\n\
         \n\
         common options:\n\
           --procs N           processors (default 8)\n\
           --nic <cni|standard>  interface (default cni)\n\
           --compare           run both interfaces and print both\n\
           --page-bytes N      shared page size (default 2048)\n\
           --msg-cache-bytes N Message Cache capacity (default 32768)\n\
           --jumbo             unrestricted ATM cell size\n\
           --topology LxDxU    2-level fat-tree: L leaf switches, D host\n\
                               ports and U uplinks each (e.g. 4x16x16 =\n\
                               64 hosts); `single` = one 32-port banyan\n\
                               (the default). See TOPOLOGY.md.\n\
           --tree-barrier      combining-tree barrier (extension)\n\
           --collectives       NIC-resident barrier/release combining\n\
                               (implies --tree-barrier; CNI only)\n\
           --seed N            timing-jitter seed (workloads are fixed)\n\
           --engine-workers N  parallel event-executor threads per run\n\
                               (default 1 = the exact serial engine).\n\
                               Reports are byte-identical at any count;\n\
                               traced/obs/checkpointing runs stay serial.\n\
                               See DESIGN.md section 4.11\n\
           --loss-prob P       per-cell drop probability in [0,1) (default 0)\n\
           --corrupt-prob P    per-cell bit-corruption probability (default 0)\n\
           --jitter-ps N       max per-cell delivery jitter in ps (default 0)\n\
           --fault-seed N      fault-injection RNG seed (default 1)\n\
           --json              machine-readable output\n\
           --obs               causal span tracing + analysis: stage\n\
                               decomposition, critical path, utilization\n\
                               (uses the default 100 us metrics sampler)\n\
           --trace PATH        record simulation events to PATH\n\
           --trace-format F    chrome (default; Perfetto-loadable) | jsonl\n\
           --metrics-interval-us N  metrics sample spacing in virtual us\n\
                               (default 100; 0 disables the sampler)\n\
         jacobi:   --n N (grid, default 256)   --iters N (default 25)\n\
         water:    --molecules N (default 216) --steps N (default 2)\n\
         cholesky: --matrix <bcsstk14|bcsstk15> (default bcsstk14)\n\
         latency:  --bytes N (message size, default 4096)"
    );
    std::process::exit(2)
}

fn parse_args() -> HashMap<String, String> {
    let mut out = HashMap::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let Some(key) = a.strip_prefix("--") else {
            eprintln!("unexpected argument {a:?}");
            usage();
        };
        match key {
            "compare" | "jumbo" | "json" | "help" | "obs" | "tree-barrier" | "collectives" => {
                out.insert(key.to_string(), "true".to_string());
            }
            _ => {
                let Some(v) = args.next() else {
                    eprintln!("missing value for --{key}");
                    usage();
                };
                out.insert(key.to_string(), v);
            }
        }
    }
    out
}

fn get<T: std::str::FromStr>(args: &HashMap<String, String>, key: &str, default: T) -> T {
    match args.get(key) {
        None => default,
        Some(v) => v.parse().unwrap_or_else(|_| {
            eprintln!("bad value for --{key}: {v:?}");
            usage();
        }),
    }
}

fn print_report(label: &str, cfg: &Config, r: &RunReport, json: bool) {
    if json {
        let latency: Vec<serde_json::Value> = r
            .latency
            .iter()
            .map(|l| {
                serde_json::json!({
                    "kind": kind_name(l.kind),
                    "count": l.count,
                    "mean_us": l.mean_us,
                    "p50_us": l.p50_us,
                    "p99_us": l.p99_us,
                })
            })
            .collect();
        println!(
            "{}",
            serde_json::json!({
                "version": REPORT_VERSION,
                "nic": label,
                "wall_ms": r.wall.as_ms_f64(),
                "hit_ratio": r.hit_ratio(),
                "messages": r.messages,
                "interrupts": r.interrupts(),
                "dma_bytes_to_board": r.dma_bytes_to_board(),
                "mean_breakdown_gcycles": serde_json::json!({
                    "compute": RunReport::gcycles(r.mean_breakdown().compute, cfg.nic.host_clock),
                    "overhead": RunReport::gcycles(r.mean_breakdown().overhead, cfg.nic.host_clock),
                    "delay": RunReport::gcycles(r.mean_breakdown().delay, cfg.nic.host_clock),
                }),
                "latency": serde_json::Value::Array(latency),
                "coll_combines": r.nic.iter().map(|n| n.coll_combines).sum::<u64>(),
                "coll_forwards": r.nic.iter().map(|n| n.coll_forwards).sum::<u64>(),
                "faults": serde_json::to_value(r.faults).unwrap_or(serde_json::Value::Null),
                "stages": r.stages.as_ref()
                    .and_then(|s| serde_json::to_value(s).ok())
                    .unwrap_or(serde_json::Value::Null),
            })
        );
        return;
    }
    let b = r.mean_breakdown();
    println!("--- {label} ---");
    println!("completion time     : {}", r.wall);
    println!("mean compute        : {}", b.compute);
    println!("mean synch overhead : {}", b.overhead);
    println!("mean synch delay    : {}", b.delay);
    println!("protocol messages   : {}", r.messages);
    println!("net cache hit ratio : {:.1}%", r.hit_ratio() * 100.0);
    println!("host interrupts     : {}", r.interrupts());
    println!("host->board DMA     : {} bytes", r.dma_bytes_to_board());
    let (combines, forwards) = r.nic.iter().fold((0u64, 0u64), |(c, f), n| {
        (c + n.coll_combines, f + n.coll_forwards)
    });
    if combines + forwards > 0 {
        println!("NIC collectives     : {combines} combines, {forwards} forwards");
    }
    for l in &r.latency {
        println!(
            "latency {:<14}: n={:<7} mean {:.2} us, p50 {:.2} us, p99 {:.2} us",
            kind_name(l.kind),
            l.count,
            l.mean_us,
            l.p50_us,
            l.p99_us
        );
    }
    if r.faults != cni::FaultStats::default() {
        let f = &r.faults;
        println!(
            "cells dropped       : {} ({} in brownouts), corrupted {}",
            f.cells_dropped, f.brownout_cells, f.cells_corrupted
        );
        println!(
            "crc failures        : {}, duplicates {}, ring overflows {}",
            f.crc_failures, f.duplicates, f.ring_overflows
        );
        println!(
            "retransmits         : {} ({} timeouts, {} fast), acks {}",
            f.retransmits, f.timeouts, f.fast_retransmits, f.acks_sent
        );
    }
    if let Some(t) = &r.trace {
        println!(
            "trace               : {} events recorded, {} dropped (ring {})",
            t.recorded, t.dropped, t.capacity
        );
    }
}

fn nic_label(cfg: &Config) -> &'static str {
    match cfg.nic_kind {
        NicKind::Cni => "cni",
        NicKind::Standard => "standard",
    }
}

/// Parse `--brownout LINK:START_US:END_US` (virtual microseconds).
fn parse_brownout(s: &str) -> Result<BrownoutWindow, String> {
    let parts: Vec<&str> = s.split(':').collect();
    let [link, start, end] = parts[..] else {
        return Err(format!("--brownout wants LINK:START_US:END_US, got {s:?}"));
    };
    let link: u32 = link
        .parse()
        .map_err(|_| format!("--brownout link must be an integer, got {link:?}"))?;
    let start_us: u64 = start
        .parse()
        .map_err(|_| format!("--brownout start must be an integer (us), got {start:?}"))?;
    let end_us: u64 = end
        .parse()
        .map_err(|_| format!("--brownout end must be an integer (us), got {end:?}"))?;
    Ok(BrownoutWindow {
        link,
        start_ps: start_us * 1_000_000,
        end_ps: end_us * 1_000_000,
    })
}

/// Execute `--resume PATH` / `--fork-at PATH`: rebuild the snapshot's
/// world, replay its journal and run to completion. A fork swaps the
/// stored fault plan for `fork_plan`; a plain resume keeps the stored
/// configuration in full — except `--engine-workers`, which is an
/// execution-resource knob, not part of the experiment: a serially
/// checkpointed run may finish on N workers (and vice versa) with a
/// byte-identical report.
fn run_resume(path: &str, fork_plan: Option<FaultPlan>, workers: usize, json: bool) -> ExitCode {
    let snap = match read_snapshot(Path::new(path)) {
        Ok(s) => s,
        Err(e) => {
            eprint!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let cfg = match fork_plan {
        None => snap.config,
        Some(plan) => snap.config.with_faults(plan),
    }
    .with_engine_workers(workers);
    eprintln!(
        "{} {} ({} procs, {}) from {} at {} events",
        if fork_plan.is_some() {
            "forking"
        } else {
            "resuming"
        },
        snap.app.name(),
        cfg.procs,
        nic_label(&cfg),
        path,
        snap.events,
    );
    match snap.resume_with(cfg) {
        Ok(report) => {
            print_report(nic_label(&cfg), &cfg, &report, json);
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprint!("{e}");
            ExitCode::FAILURE
        }
    }
}

/// One sweep job under `--resume-dir`: resume from the newest usable
/// checkpoint if one exists (and its snapshot still matches the spec),
/// else run fresh, checkpointing when `every > 0`. Errors panic — the
/// batch executor isolates them as that job's failure record.
fn run_resumable_job(cfg: Config, app: App, every: u64, ck_dir: &Path, label: &str) -> RunReport {
    use serde::Serialize;
    if let Some(snap_path) = newest_snapshot(ck_dir) {
        match read_snapshot(&snap_path) {
            // Worker count is an execution resource, not an experiment
            // axis: a snapshot taken at any `--engine-workers` resumes
            // under the sweep's current one, byte-identically.
            Ok(snap)
                if snap
                    .config
                    .with_engine_workers(cfg.engine_workers)
                    .to_value()
                    == cfg.to_value() =>
            {
                match snap.resume_with(cfg) {
                    Ok(r) => {
                        eprintln!(
                            "[resume] {label}: resumed from {} ({} events)",
                            snap_path.display(),
                            snap.events
                        );
                        return r;
                    }
                    Err(e) => {
                        eprint!(
                            "[resume] {label}: checkpoint unusable, rerunning from scratch\n{e}"
                        )
                    }
                }
            }
            Ok(_) => eprintln!(
                "[resume] {label}: checkpoint was taken under a different config, rerunning"
            ),
            Err(e) => {
                eprint!("[resume] {label}: checkpoint unreadable, rerunning from scratch\n{e}")
            }
        }
    }
    if every > 0 {
        match run_app_checkpointed(cfg, app, every, ck_dir) {
            Ok(ck) => ck.report,
            Err(e) => panic!("{e}"),
        }
    } else {
        run_app(cfg, app)
    }
}

/// Execute `--sweep`: parse the spec, run every job on a work-stealing
/// pool, print/persist the batch report. Per-run reports are bit-identical
/// to what the same spec produces under `--jobs 1` (or a plain single
/// run); only wall-clock changes with the worker count.
fn run_sweep(args: &HashMap<String, String>, spec_path: &str) -> ExitCode {
    let json = args.contains_key("json");
    let jobs: usize = get(args, "jobs", cni_batch::default_jobs());
    let engine_workers: usize = get(args, "engine-workers", 1);
    if engine_workers == 0 {
        eprintln!("--engine-workers must be at least 1");
        return ExitCode::from(2);
    }
    let trace_format = args
        .get("trace-format")
        .map(String::as_str)
        .unwrap_or("chrome");
    if !matches!(trace_format, "chrome" | "jsonl") {
        eprintln!("unknown trace format {trace_format:?} (chrome or jsonl)");
        usage();
    }
    let trace_dir = args.get("trace-dir").cloned();
    if let Some(dir) = &trace_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create trace dir {dir:?}: {e}");
            return ExitCode::FAILURE;
        }
    }
    let resume_dir = args.get("resume-dir").cloned();
    let ck_every: u64 = get(args, "checkpoint-every", 0);
    if ck_every > 0 && resume_dir.is_none() {
        eprintln!("--checkpoint-every in sweep mode requires --resume-dir");
        return ExitCode::from(2);
    }
    if resume_dir.is_some() && trace_dir.is_some() {
        eprintln!("--resume-dir cannot be combined with --trace-dir (resumed jobs are untraced)");
        return ExitCode::from(2);
    }
    if let Some(dir) = &resume_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create resume dir {dir:?}: {e}");
            return ExitCode::FAILURE;
        }
    }
    let text = match std::fs::read_to_string(spec_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read sweep spec {spec_path:?}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let specs = match cni_apps::sweep::parse_sweep(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("bad sweep spec {spec_path:?}: {e}");
            return ExitCode::from(2);
        }
    };
    eprintln!(
        "sweep: {} run(s) on {} worker(s)",
        specs.len(),
        Pool::new(jobs).workers()
    );
    let ext = if trace_format == "chrome" {
        "json"
    } else {
        "jsonl"
    };
    let report = Pool::new(jobs).run_batch(specs, |i, spec| {
        // One knob for the whole batch: per-run parallelism multiplies
        // with `--jobs`, so it is a command-line resource setting (like
        // `--jobs` itself), not a per-entry sweep axis.
        let cfg = spec.effective_config().with_engine_workers(engine_workers);
        if let Some(dir) = &resume_dir {
            let dir = Path::new(dir);
            let report_path = job_trace_path(dir, i, &spec.label, "report.json");
            if let Ok(text) = std::fs::read_to_string(&report_path) {
                match serde_json::from_str::<RunReport>(&text) {
                    Ok(r) => {
                        eprintln!("[resume] {}: already complete, skipping", spec.label);
                        return r;
                    }
                    Err(e) => eprintln!(
                        "[resume] {}: ignoring unreadable {}: {e}",
                        spec.label,
                        report_path.display()
                    ),
                }
            }
            let ck_dir = job_trace_path(dir, i, &spec.label, "ck");
            let r = run_resumable_job(cfg, spec.workload, ck_every, &ck_dir, &spec.label);
            let text = serde_json::to_string(&r).expect("report serializes");
            if let Err(e) = cni_snap::write_atomic(&report_path, text.as_bytes()) {
                eprintln!("cannot persist {}: {e}", report_path.display());
            }
            return r;
        }
        match &trace_dir {
            None => run_app(cfg, spec.workload),
            Some(dir) => {
                let sink = TraceSink::ring(1 << 20);
                let r = run_app_traced(cfg, spec.workload, sink.clone(), None);
                let path = job_trace_path(Path::new(dir), i, &spec.label, ext);
                let records = sink.drain();
                match std::fs::File::create(&path) {
                    Err(e) => eprintln!("cannot create {path:?}: {e}"),
                    Ok(f) => {
                        let mut w = BufWriter::new(f);
                        let res = match trace_format {
                            "chrome" => write_chrome(&mut w, &records),
                            _ => write_jsonl(&mut w, &records),
                        };
                        if let Err(e) = res {
                            eprintln!("cannot write {path:?}: {e}");
                        }
                    }
                }
                r
            }
        }
    });
    if let Some(out) = args.get("out") {
        match serde_json::to_string_pretty(&report) {
            Ok(s) => {
                if let Err(e) = std::fs::write(out, s + "\n") {
                    eprintln!("cannot write {out:?}: {e}");
                    return ExitCode::FAILURE;
                }
            }
            Err(e) => {
                eprintln!("cannot serialize batch report: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if json {
        println!(
            "{}",
            serde_json::to_string_pretty(&report).expect("batch report serializes")
        );
    } else {
        println!(
            "{:>5} {:>28} {:>12} {:>10} {:>12} {:>10}",
            "job", "label", "wall(ms)", "hit(%)", "messages", "host(s)"
        );
        for j in &report.jobs {
            match &j.report {
                Some(r) => println!(
                    "{:>5} {:>28} {:>12.2} {:>10.1} {:>12} {:>10.2}",
                    j.index,
                    j.label,
                    r.wall.as_ms_f64(),
                    r.hit_ratio() * 100.0,
                    r.messages,
                    j.timing.wall_s
                ),
                None => println!(
                    "{:>5} {:>28} PANICKED: {}",
                    j.index,
                    j.label,
                    j.error.as_deref().unwrap_or("?")
                ),
            }
        }
        println!(
            "batch: {}/{} runs ok on {} worker(s); wall {:.2}s, serial-equivalent {:.2}s",
            report.completed(),
            report.jobs.len(),
            report.workers,
            report.wall_s,
            report.serial_wall_s()
        );
    }
    if report.completed() == report.jobs.len() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let args = parse_args();
    if args.contains_key("help") {
        usage();
    }
    if let Some(spec_path) = args.get("sweep") {
        return run_sweep(&args, &spec_path.clone());
    }
    let json = args.contains_key("json");
    let topology: cni_atm::Topology = match args.get("topology") {
        None => cni_atm::Topology::Single,
        Some(s) => match s.parse() {
            Ok(t) => t,
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::from(2);
            }
        },
    };
    let mut base = Config::paper_default();
    if let Err(e) = topology.validate(base.atm.ports) {
        eprintln!("--topology: {e}");
        return ExitCode::from(2);
    }
    base.atm.topology = topology;
    let hosts = base.atm.hosts();
    let procs: usize = get(&args, "procs", 8);
    if !(1..=hosts).contains(&procs) {
        eprintln!("--procs must be between 1 and {hosts} (the fabric serves {hosts} hosts)");
        return ExitCode::from(2);
    }
    let mut base = base
        .with_procs(procs)
        .with_page_bytes(get(&args, "page-bytes", 2048))
        .with_msg_cache_bytes(get(&args, "msg-cache-bytes", 32 * 1024));
    base.seed = get(&args, "seed", 0x5EED_u64);
    let engine_workers: usize = get(&args, "engine-workers", 1);
    if engine_workers == 0 {
        eprintln!("--engine-workers must be at least 1");
        return ExitCode::from(2);
    }
    base = base.with_engine_workers(engine_workers);
    if args.contains_key("jumbo") {
        base = base.with_unrestricted_cells();
    }
    if args.contains_key("tree-barrier") {
        base = base.with_tree_barrier();
    }
    if args.contains_key("collectives") {
        base = base.with_collectives();
    }
    let mut plan = FaultPlan::none();
    plan.drop_prob = get(&args, "loss-prob", 0.0);
    plan.corrupt_prob = get(&args, "corrupt-prob", 0.0);
    plan.jitter_ps = get(&args, "jitter-ps", 0);
    plan.seed = get(&args, "fault-seed", 1);
    if !(0.0..1.0).contains(&plan.drop_prob) || !(0.0..1.0).contains(&plan.corrupt_prob) {
        eprintln!("--loss-prob and --corrupt-prob must be in [0, 1)");
        return ExitCode::from(2);
    }
    if let Some(b) = args.get("brownout") {
        match parse_brownout(b) {
            Ok(w) => plan.brownouts[0] = Some(w),
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::from(2);
            }
        }
    }
    base = base.with_faults(plan);

    match (args.get("resume"), args.get("fork-at")) {
        (Some(_), Some(_)) => {
            eprintln!("--resume and --fork-at are mutually exclusive");
            return ExitCode::from(2);
        }
        // Plain resume: everything comes from the snapshot.
        (Some(path), None) => return run_resume(path, None, engine_workers, json),
        // Fork: the command line's fault plan replaces the snapshot's.
        (None, Some(path)) => return run_resume(path, Some(plan), engine_workers, json),
        (None, None) => {}
    }

    let app_name = args
        .get("app")
        .map(String::as_str)
        .unwrap_or_else(|| usage());
    if app_name == "latency" {
        let bytes: usize = get(&args, "bytes", 4096);
        let pts = cni_apps::experiments::latency_curve(base, &[bytes], 5);
        let p = pts[0];
        if json {
            println!(
                "{}",
                serde_json::json!({"bytes": p.bytes, "cni_us": p.cni_us, "std_us": p.std_us})
            );
        } else {
            println!(
                "{} bytes: CNI {:.1} us, standard {:.1} us ({:.1}% reduction)",
                p.bytes,
                p.cni_us,
                p.std_us,
                (1.0 - p.cni_us / p.std_us) * 100.0
            );
        }
        return ExitCode::SUCCESS;
    }

    let app = match app_name {
        "jacobi" => App::Jacobi {
            n: get(&args, "n", 256),
            iters: get(&args, "iters", 25),
        },
        "water" => App::Water {
            molecules: get(&args, "molecules", 216),
            steps: get(&args, "steps", 2),
        },
        "cholesky" => App::Cholesky {
            matrix: match args.get("matrix").map(String::as_str).unwrap_or("bcsstk14") {
                "bcsstk14" => CholeskyMatrix::Bcsstk14,
                "bcsstk15" => CholeskyMatrix::Bcsstk15,
                other => {
                    eprintln!("unknown matrix {other:?}");
                    usage();
                }
            },
        },
        other => {
            eprintln!("unknown app {other:?}");
            usage();
        }
    };

    let kinds: Vec<(&str, Config)> = if args.contains_key("compare") {
        vec![("cni", base.cni()), ("standard", base.standard())]
    } else {
        match args.get("nic").map(String::as_str).unwrap_or("cni") {
            "cni" => vec![("cni", base.cni())],
            "standard" => vec![("standard", base.standard())],
            other => {
                eprintln!("unknown nic {other:?}");
                usage();
            }
        }
    };
    let trace_path = args.get("trace").cloned();
    let trace_format = args
        .get("trace-format")
        .map(String::as_str)
        .unwrap_or("chrome");
    if !matches!(trace_format, "chrome" | "jsonl") {
        eprintln!("unknown trace format {trace_format:?} (chrome or jsonl)");
        usage();
    }
    let metrics_us: u64 = get(&args, "metrics-interval-us", 100);

    let obs = args.contains_key("obs");
    let multi = kinds.len() > 1;

    let ck_every: u64 = get(&args, "checkpoint-every", 0);
    if ck_every > 0 {
        if obs || trace_path.is_some() {
            eprintln!(
                "--checkpoint-every cannot be combined with --obs or --trace \
                 (snapshots require an untraced run)"
            );
            return ExitCode::from(2);
        }
        let dir = PathBuf::from(
            args.get("checkpoint-dir")
                .cloned()
                .unwrap_or_else(|| "cni-checkpoints".to_string()),
        );
        for (label, cfg) in kinds {
            // A --compare run checkpoints each interface into its own
            // subdirectory so the snapshots cannot collide.
            let job_dir = if multi { dir.join(label) } else { dir.clone() };
            match run_app_checkpointed(cfg, app, ck_every, &job_dir) {
                Err(e) => {
                    eprint!("{e}");
                    return ExitCode::FAILURE;
                }
                Ok(ck) => {
                    print_report(label, &cfg, &ck.report, json);
                    if !json {
                        println!(
                            "checkpoints written : {} under {}",
                            ck.snapshots.len(),
                            job_dir.display()
                        );
                    }
                }
            }
        }
        return ExitCode::SUCCESS;
    }

    for (label, cfg) in kinds {
        let (report, records) = if obs {
            let (report, records) = run_app_obs(cfg, app);
            (report, Some(records))
        } else if trace_path.is_some() {
            // 2^20 events is plenty for the default workloads and keeps
            // even runaway runs bounded to a few hundred MB of JSON.
            let sink = TraceSink::ring(1 << 20);
            let interval = (metrics_us > 0).then(|| SimTime::from_us(metrics_us));
            let report = run_app_traced(cfg, app, sink.clone(), interval);
            (report, Some(sink.drain()))
        } else {
            (run_app(cfg, app), None)
        };
        print_report(label, &cfg, &report, json);
        if obs && !json {
            if let Some(records) = &records {
                print!("{}", cni_obs::render_analysis(records));
            }
        }
        if let (Some(path), Some(records)) = (&trace_path, &records) {
            // A --compare run produces one trace per interface.
            let path = if multi {
                format!("{path}.{label}")
            } else {
                path.clone()
            };
            let file = match std::fs::File::create(&path) {
                Ok(f) => f,
                Err(e) => {
                    eprintln!("cannot create {path:?}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let mut w = BufWriter::new(file);
            let res = match trace_format {
                "chrome" => write_chrome(&mut w, records),
                _ => write_jsonl(&mut w, records),
            };
            if let Err(e) = res {
                eprintln!("cannot write {path:?}: {e}");
                return ExitCode::FAILURE;
            }
            if !json {
                println!("trace written       : {path} ({} events)", records.len());
            }
        }
    }
    ExitCode::SUCCESS
}
