//! `cni-run` — command-line driver for the CNI cluster simulator.
//!
//! ```text
//! cni-run --app jacobi --n 256 --iters 25 --procs 8 --nic cni
//! cni-run --app water --molecules 216 --procs 16 --nic standard
//! cni-run --app cholesky --matrix bcsstk14 --procs 8 --page-bytes 4096
//! cni-run --app jacobi --n 128 --procs 8 --compare   # CNI vs standard
//! ```
//!
//! Prints the run report (completion time, overhead breakdown, network
//! cache hit ratio, NIC counters) as text, or JSON with `--json`.
//!
//! With `--trace <path>` the run records simulation events (queue
//! dispatches, DMA transfers, Message-Cache traffic, PATHFINDER
//! classifications, DSM protocol actions, periodic metrics samples) and
//! exports them as a Chrome trace-event file (load in Perfetto /
//! `chrome://tracing`) or as JSONL.
//!
//! With `--obs` the run additionally threads causal span ids through
//! every PDU lifecycle and prints the `cni-obs` analysis: per-message
//! stage decomposition, the barrier interval's critical path and the
//! run-wide utilization profile. A JSONL trace written under `--obs`
//! can be re-analysed offline with `cni-analyze`.

use cni::{kind_name, Config, FaultPlan, RunReport, SimTime, TraceSink, REPORT_VERSION};
use cni_apps::cholesky::CholeskyMatrix;
use cni_apps::experiments::{run_app, run_app_obs, run_app_traced, App};
use cni_batch::Pool;
use cni_trace::export::{job_trace_path, write_chrome, write_jsonl};
use std::collections::HashMap;
use std::io::BufWriter;
use std::path::Path;
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!(
        "usage: cni-run --app <jacobi|water|cholesky|latency> [options]\n\
         \x20      cni-run --sweep <spec.json> [--jobs N] [options]\n\
         \n\
         sweep mode (parallel batch over a JSON run list):\n\
           --sweep PATH        JSON array of run objects; see docs of\n\
                               cni_apps::sweep for the format\n\
           --jobs N            worker threads (default: $CNI_JOBS, else\n\
                               the machine's available parallelism)\n\
           --out PATH          also write the batch report JSON to PATH\n\
           --trace-dir DIR     record each run's events to its own file\n\
                               DIR/<index>-<label>.<ext>\n\
           --json              print the batch report as JSON\n\
         \n\
         common options:\n\
           --procs N           processors (default 8)\n\
           --nic <cni|standard>  interface (default cni)\n\
           --compare           run both interfaces and print both\n\
           --page-bytes N      shared page size (default 2048)\n\
           --msg-cache-bytes N Message Cache capacity (default 32768)\n\
           --jumbo             unrestricted ATM cell size\n\
           --tree-barrier      combining-tree barrier (extension)\n\
           --seed N            timing-jitter seed (workloads are fixed)\n\
           --loss-prob P       per-cell drop probability in [0,1) (default 0)\n\
           --corrupt-prob P    per-cell bit-corruption probability (default 0)\n\
           --jitter-ps N       max per-cell delivery jitter in ps (default 0)\n\
           --fault-seed N      fault-injection RNG seed (default 1)\n\
           --json              machine-readable output\n\
           --obs               causal span tracing + analysis: stage\n\
                               decomposition, critical path, utilization\n\
                               (uses the default 100 us metrics sampler)\n\
           --trace PATH        record simulation events to PATH\n\
           --trace-format F    chrome (default; Perfetto-loadable) | jsonl\n\
           --metrics-interval-us N  metrics sample spacing in virtual us\n\
                               (default 100; 0 disables the sampler)\n\
         jacobi:   --n N (grid, default 256)   --iters N (default 25)\n\
         water:    --molecules N (default 216) --steps N (default 2)\n\
         cholesky: --matrix <bcsstk14|bcsstk15> (default bcsstk14)\n\
         latency:  --bytes N (message size, default 4096)"
    );
    std::process::exit(2)
}

fn parse_args() -> HashMap<String, String> {
    let mut out = HashMap::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let Some(key) = a.strip_prefix("--") else {
            eprintln!("unexpected argument {a:?}");
            usage();
        };
        match key {
            "compare" | "jumbo" | "json" | "help" | "obs" | "tree-barrier" => {
                out.insert(key.to_string(), "true".to_string());
            }
            _ => {
                let Some(v) = args.next() else {
                    eprintln!("missing value for --{key}");
                    usage();
                };
                out.insert(key.to_string(), v);
            }
        }
    }
    out
}

fn get<T: std::str::FromStr>(args: &HashMap<String, String>, key: &str, default: T) -> T {
    match args.get(key) {
        None => default,
        Some(v) => v.parse().unwrap_or_else(|_| {
            eprintln!("bad value for --{key}: {v:?}");
            usage();
        }),
    }
}

fn print_report(label: &str, cfg: &Config, r: &RunReport, json: bool) {
    if json {
        let latency: Vec<serde_json::Value> = r
            .latency
            .iter()
            .map(|l| {
                serde_json::json!({
                    "kind": kind_name(l.kind),
                    "count": l.count,
                    "mean_us": l.mean_us,
                    "p50_us": l.p50_us,
                    "p99_us": l.p99_us,
                })
            })
            .collect();
        println!(
            "{}",
            serde_json::json!({
                "version": REPORT_VERSION,
                "nic": label,
                "wall_ms": r.wall.as_ms_f64(),
                "hit_ratio": r.hit_ratio(),
                "messages": r.messages,
                "interrupts": r.interrupts(),
                "dma_bytes_to_board": r.dma_bytes_to_board(),
                "mean_breakdown_gcycles": serde_json::json!({
                    "compute": RunReport::gcycles(r.mean_breakdown().compute, cfg.nic.host_clock),
                    "overhead": RunReport::gcycles(r.mean_breakdown().overhead, cfg.nic.host_clock),
                    "delay": RunReport::gcycles(r.mean_breakdown().delay, cfg.nic.host_clock),
                }),
                "latency": serde_json::Value::Array(latency),
                "faults": serde_json::to_value(r.faults).unwrap_or(serde_json::Value::Null),
                "stages": r.stages.as_ref()
                    .and_then(|s| serde_json::to_value(s).ok())
                    .unwrap_or(serde_json::Value::Null),
            })
        );
        return;
    }
    let b = r.mean_breakdown();
    println!("--- {label} ---");
    println!("completion time     : {}", r.wall);
    println!("mean compute        : {}", b.compute);
    println!("mean synch overhead : {}", b.overhead);
    println!("mean synch delay    : {}", b.delay);
    println!("protocol messages   : {}", r.messages);
    println!("net cache hit ratio : {:.1}%", r.hit_ratio() * 100.0);
    println!("host interrupts     : {}", r.interrupts());
    println!("host->board DMA     : {} bytes", r.dma_bytes_to_board());
    for l in &r.latency {
        println!(
            "latency {:<14}: n={:<7} mean {:.2} us, p50 {:.2} us, p99 {:.2} us",
            kind_name(l.kind),
            l.count,
            l.mean_us,
            l.p50_us,
            l.p99_us
        );
    }
    if r.faults != cni::FaultStats::default() {
        let f = &r.faults;
        println!(
            "cells dropped       : {} ({} in brownouts), corrupted {}",
            f.cells_dropped, f.brownout_cells, f.cells_corrupted
        );
        println!(
            "crc failures        : {}, duplicates {}, ring overflows {}",
            f.crc_failures, f.duplicates, f.ring_overflows
        );
        println!(
            "retransmits         : {} ({} timeouts, {} fast), acks {}",
            f.retransmits, f.timeouts, f.fast_retransmits, f.acks_sent
        );
    }
    if let Some(t) = &r.trace {
        println!(
            "trace               : {} events recorded, {} dropped (ring {})",
            t.recorded, t.dropped, t.capacity
        );
    }
}

/// Execute `--sweep`: parse the spec, run every job on a work-stealing
/// pool, print/persist the batch report. Per-run reports are bit-identical
/// to what the same spec produces under `--jobs 1` (or a plain single
/// run); only wall-clock changes with the worker count.
fn run_sweep(args: &HashMap<String, String>, spec_path: &str) -> ExitCode {
    let json = args.contains_key("json");
    let jobs: usize = get(args, "jobs", cni_batch::default_jobs());
    let trace_format = args
        .get("trace-format")
        .map(String::as_str)
        .unwrap_or("chrome");
    if !matches!(trace_format, "chrome" | "jsonl") {
        eprintln!("unknown trace format {trace_format:?} (chrome or jsonl)");
        usage();
    }
    let trace_dir = args.get("trace-dir").cloned();
    if let Some(dir) = &trace_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create trace dir {dir:?}: {e}");
            return ExitCode::FAILURE;
        }
    }
    let text = match std::fs::read_to_string(spec_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read sweep spec {spec_path:?}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let specs = match cni_apps::sweep::parse_sweep(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("bad sweep spec {spec_path:?}: {e}");
            return ExitCode::from(2);
        }
    };
    eprintln!(
        "sweep: {} run(s) on {} worker(s)",
        specs.len(),
        Pool::new(jobs).workers()
    );
    let ext = if trace_format == "chrome" {
        "json"
    } else {
        "jsonl"
    };
    let report = Pool::new(jobs).run_batch(specs, |i, spec| {
        let cfg = spec.effective_config();
        match &trace_dir {
            None => run_app(cfg, spec.workload),
            Some(dir) => {
                let sink = TraceSink::ring(1 << 20);
                let r = run_app_traced(cfg, spec.workload, sink.clone(), None);
                let path = job_trace_path(Path::new(dir), i, &spec.label, ext);
                let records = sink.drain();
                match std::fs::File::create(&path) {
                    Err(e) => eprintln!("cannot create {path:?}: {e}"),
                    Ok(f) => {
                        let mut w = BufWriter::new(f);
                        let res = match trace_format {
                            "chrome" => write_chrome(&mut w, &records),
                            _ => write_jsonl(&mut w, &records),
                        };
                        if let Err(e) = res {
                            eprintln!("cannot write {path:?}: {e}");
                        }
                    }
                }
                r
            }
        }
    });
    if let Some(out) = args.get("out") {
        match serde_json::to_string_pretty(&report) {
            Ok(s) => {
                if let Err(e) = std::fs::write(out, s + "\n") {
                    eprintln!("cannot write {out:?}: {e}");
                    return ExitCode::FAILURE;
                }
            }
            Err(e) => {
                eprintln!("cannot serialize batch report: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if json {
        println!(
            "{}",
            serde_json::to_string_pretty(&report).expect("batch report serializes")
        );
    } else {
        println!(
            "{:>5} {:>28} {:>12} {:>10} {:>12} {:>10}",
            "job", "label", "wall(ms)", "hit(%)", "messages", "host(s)"
        );
        for j in &report.jobs {
            match &j.report {
                Some(r) => println!(
                    "{:>5} {:>28} {:>12.2} {:>10.1} {:>12} {:>10.2}",
                    j.index,
                    j.label,
                    r.wall.as_ms_f64(),
                    r.hit_ratio() * 100.0,
                    r.messages,
                    j.timing.wall_s
                ),
                None => println!(
                    "{:>5} {:>28} PANICKED: {}",
                    j.index,
                    j.label,
                    j.error.as_deref().unwrap_or("?")
                ),
            }
        }
        println!(
            "batch: {}/{} runs ok on {} worker(s); wall {:.2}s, serial-equivalent {:.2}s",
            report.completed(),
            report.jobs.len(),
            report.workers,
            report.wall_s,
            report.serial_wall_s()
        );
    }
    if report.completed() == report.jobs.len() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let args = parse_args();
    if args.contains_key("help") {
        usage();
    }
    if let Some(spec_path) = args.get("sweep") {
        return run_sweep(&args, &spec_path.clone());
    }
    let json = args.contains_key("json");
    let procs: usize = get(&args, "procs", 8);
    if !(1..=32).contains(&procs) {
        eprintln!("--procs must be between 1 and 32 (the switch has 32 ports)");
        return ExitCode::from(2);
    }
    let mut base = Config::paper_default()
        .with_procs(procs)
        .with_page_bytes(get(&args, "page-bytes", 2048))
        .with_msg_cache_bytes(get(&args, "msg-cache-bytes", 32 * 1024));
    base.seed = get(&args, "seed", 0x5EED_u64);
    if args.contains_key("jumbo") {
        base = base.with_unrestricted_cells();
    }
    if args.contains_key("tree-barrier") {
        base = base.with_tree_barrier();
    }
    let mut plan = FaultPlan::none();
    plan.drop_prob = get(&args, "loss-prob", 0.0);
    plan.corrupt_prob = get(&args, "corrupt-prob", 0.0);
    plan.jitter_ps = get(&args, "jitter-ps", 0);
    plan.seed = get(&args, "fault-seed", 1);
    if !(0.0..1.0).contains(&plan.drop_prob) || !(0.0..1.0).contains(&plan.corrupt_prob) {
        eprintln!("--loss-prob and --corrupt-prob must be in [0, 1)");
        return ExitCode::from(2);
    }
    base = base.with_faults(plan);

    let app_name = args
        .get("app")
        .map(String::as_str)
        .unwrap_or_else(|| usage());
    if app_name == "latency" {
        let bytes: usize = get(&args, "bytes", 4096);
        let pts = cni_apps::experiments::latency_curve(base, &[bytes], 5);
        let p = pts[0];
        if json {
            println!(
                "{}",
                serde_json::json!({"bytes": p.bytes, "cni_us": p.cni_us, "std_us": p.std_us})
            );
        } else {
            println!(
                "{} bytes: CNI {:.1} us, standard {:.1} us ({:.1}% reduction)",
                p.bytes,
                p.cni_us,
                p.std_us,
                (1.0 - p.cni_us / p.std_us) * 100.0
            );
        }
        return ExitCode::SUCCESS;
    }

    let app = match app_name {
        "jacobi" => App::Jacobi {
            n: get(&args, "n", 256),
            iters: get(&args, "iters", 25),
        },
        "water" => App::Water {
            molecules: get(&args, "molecules", 216),
            steps: get(&args, "steps", 2),
        },
        "cholesky" => App::Cholesky {
            matrix: match args.get("matrix").map(String::as_str).unwrap_or("bcsstk14") {
                "bcsstk14" => CholeskyMatrix::Bcsstk14,
                "bcsstk15" => CholeskyMatrix::Bcsstk15,
                other => {
                    eprintln!("unknown matrix {other:?}");
                    usage();
                }
            },
        },
        other => {
            eprintln!("unknown app {other:?}");
            usage();
        }
    };

    let kinds: Vec<(&str, Config)> = if args.contains_key("compare") {
        vec![("cni", base.cni()), ("standard", base.standard())]
    } else {
        match args.get("nic").map(String::as_str).unwrap_or("cni") {
            "cni" => vec![("cni", base.cni())],
            "standard" => vec![("standard", base.standard())],
            other => {
                eprintln!("unknown nic {other:?}");
                usage();
            }
        }
    };
    let trace_path = args.get("trace").cloned();
    let trace_format = args
        .get("trace-format")
        .map(String::as_str)
        .unwrap_or("chrome");
    if !matches!(trace_format, "chrome" | "jsonl") {
        eprintln!("unknown trace format {trace_format:?} (chrome or jsonl)");
        usage();
    }
    let metrics_us: u64 = get(&args, "metrics-interval-us", 100);

    let obs = args.contains_key("obs");
    let multi = kinds.len() > 1;
    for (label, cfg) in kinds {
        let (report, records) = if obs {
            let (report, records) = run_app_obs(cfg, app);
            (report, Some(records))
        } else if trace_path.is_some() {
            // 2^20 events is plenty for the default workloads and keeps
            // even runaway runs bounded to a few hundred MB of JSON.
            let sink = TraceSink::ring(1 << 20);
            let interval = (metrics_us > 0).then(|| SimTime::from_us(metrics_us));
            let report = run_app_traced(cfg, app, sink.clone(), interval);
            (report, Some(sink.drain()))
        } else {
            (run_app(cfg, app), None)
        };
        print_report(label, &cfg, &report, json);
        if obs && !json {
            if let Some(records) = &records {
                print!("{}", cni_obs::render_analysis(records));
            }
        }
        if let (Some(path), Some(records)) = (&trace_path, &records) {
            // A --compare run produces one trace per interface.
            let path = if multi {
                format!("{path}.{label}")
            } else {
                path.clone()
            };
            let file = match std::fs::File::create(&path) {
                Ok(f) => f,
                Err(e) => {
                    eprintln!("cannot create {path:?}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let mut w = BufWriter::new(file);
            let res = match trace_format {
                "chrome" => write_chrome(&mut w, records),
                _ => write_jsonl(&mut w, records),
            };
            if let Err(e) = res {
                eprintln!("cannot write {path:?}: {e}");
                return ExitCode::FAILURE;
            }
            if !json {
                println!("trace written       : {path} ({} events)", records.len());
            }
        }
    }
    ExitCode::SUCCESS
}
