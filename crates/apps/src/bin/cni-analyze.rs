//! `cni-analyze` — offline analysis of a JSONL simulation trace.
//!
//! ```text
//! cni-run --app jacobi --n 48 --iters 6 --obs --trace run.jsonl --trace-format jsonl
//! cni-analyze run.jsonl
//! cni-analyze run.jsonl --folded stacks.txt   # flamegraph.pl input
//! ```
//!
//! Reads a trace recorded by `cni-run --trace ... --trace-format jsonl`
//! (with spans enabled via `--obs`) and prints the same analysis the
//! live `--obs` run prints: span accounting, per-kind and per-channel
//! stage decomposition, the critical path of the last barrier interval
//! and the run-wide utilization profile. Output is byte-deterministic:
//! the same trace file always renders the same report.

use cni_obs::{folded_stacks, read_jsonl, render_analysis, utilization};
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!(
        "usage: cni-analyze <trace.jsonl> [--folded PATH]\n\
         \n\
         \x20 <trace.jsonl>   JSONL trace from cni-run --trace ... --trace-format jsonl\n\
         \x20 --folded PATH   also write the utilization profile as folded\n\
         \x20                 stacks (flamegraph.pl / collapsed-stack input)"
    );
    std::process::exit(2)
}

fn main() -> ExitCode {
    let mut trace_path: Option<String> = None;
    let mut folded_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--help" | "-h" => usage(),
            "--folded" => {
                let Some(p) = args.next() else {
                    eprintln!("missing value for --folded");
                    usage();
                };
                folded_path = Some(p);
            }
            _ if a.starts_with('-') => {
                eprintln!("unknown option {a:?}");
                usage();
            }
            _ if trace_path.is_some() => {
                eprintln!("more than one trace file given");
                usage();
            }
            _ => trace_path = Some(a),
        }
    }
    let Some(path) = trace_path else { usage() };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {path:?}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let records = match read_jsonl(&text) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("{path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    print!("{}", render_analysis(&records));
    if let Some(out) = &folded_path {
        let stacks = folded_stacks(&utilization(&records));
        if let Err(e) = std::fs::write(out, stacks) {
            eprintln!("cannot write {out:?}: {e}");
            return ExitCode::FAILURE;
        }
        println!("folded stacks written: {out}");
    }
    ExitCode::SUCCESS
}
