//! `cni-batch` — work-stealing parallel experiment executor.
//!
//! The paper's evaluation (§3) is 18 experiments over three DSM
//! applications, each a sweep of many independent simulation runs. Every
//! run is a pure function of its [`cni::Config`] (seed and fault plan
//! included), so a sweep is embarrassingly parallel — but only if the
//! harness preserves each run's determinism while overlapping them. This
//! crate is that harness:
//!
//! * [`RunSpec`] — one job of a batch: a label, a [`cni::Config`], the
//!   fault plan and seed applied to it, and an arbitrary workload payload
//!   (the application to run, a message size to measure, …).
//! * [`Pool`] — a bounded worker pool with per-worker deques and work
//!   stealing. Jobs are dealt round-robin; an idle worker first drains its
//!   own deque from the front, then steals from the *back* of a victim's,
//!   so long and short jobs mix without a central bottleneck.
//!   [`Pool::map`] is the low-level deterministic parallel map; results
//!   are always collected **by job index**, never by completion order.
//! * [`Pool::run_batch`] — the high-level entry: executes every
//!   [`RunSpec`], isolates panics (one diverging run becomes an errored
//!   [`JobRecord`], not a dead batch), times each job (host wall clock and
//!   Linux thread CPU time) and aggregates everything into a
//!   [`BatchReport`] with per-kind latency histograms merged across runs.
//!
//! # Determinism contract
//!
//! A simulation run's [`cni::RunReport`] depends only on its `RunSpec`,
//! never on the worker that executed it, the number of workers, or the
//! completion order of its neighbours. `Pool::map` therefore guarantees:
//! running the same specs with 1 worker and with N workers produces
//! **byte-identical** per-run report JSON (`tests/batch_parallel.rs`
//! enforces this). Host-side timing lives in [`JobRecord`], *outside* the
//! `RunReport`, precisely so that it cannot break this property.
//!
//! ```
//! use cni_batch::{Pool, RunSpec};
//! use cni::Config;
//!
//! // Four trivial jobs; the workload payload here is just a number.
//! let specs: Vec<RunSpec<u64>> = (0..4)
//!     .map(|i| RunSpec::new(format!("job-{i}"), Config::paper_default(), i))
//!     .collect();
//! let report = Pool::new(2).quiet().run_batch(specs, |_, spec| {
//!     // A real runner would build a `World` from `spec.effective_config()`.
//!     let mut r = cni_batch::doctest_report();
//!     r.messages = spec.workload;
//!     r
//! });
//! assert_eq!(report.jobs.len(), 4);
//! assert_eq!(report.jobs[3].report.as_ref().unwrap().messages, 3);
//! ```

#![deny(missing_docs)]

use cni::{Config, FaultPlan, KindHistogram, RunReport, REPORT_VERSION};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Schema version of [`BatchReport`]'s serialized form.
pub const BATCH_VERSION: u32 = 1;

/// One job of a batch: everything that determines a simulation run.
///
/// The fault plan and seed are carried explicitly (not only inside
/// `config`) so a sweep can be *described* as "this base config × these
/// seeds × these fault plans" and each job remains self-describing;
/// [`RunSpec::effective_config`] folds them back in before the run.
#[derive(Clone, Debug)]
pub struct RunSpec<W> {
    /// Human-readable job name, used in progress output and reports.
    pub label: String,
    /// Base cluster configuration.
    pub config: Config,
    /// Fault plan applied to `config` for this run.
    pub faults: FaultPlan,
    /// Timing-jitter seed applied to `config` for this run.
    pub seed: u64,
    /// Workload payload interpreted by the runner (e.g. which application
    /// to execute). The executor itself never looks inside.
    pub workload: W,
}

impl<W> RunSpec<W> {
    /// A spec inheriting `config`'s own fault plan and seed.
    pub fn new(label: impl Into<String>, config: Config, workload: W) -> Self {
        RunSpec {
            label: label.into(),
            faults: config.faults,
            seed: config.seed,
            config,
            workload,
        }
    }

    /// The configuration the run must use: `config` with this spec's fault
    /// plan and seed folded in.
    pub fn effective_config(&self) -> Config {
        let mut c = self.config;
        c.faults = self.faults;
        c.seed = self.seed;
        c
    }
}

/// Host-side timing of one executed job. Lives in [`JobRecord`] — never in
/// the [`RunReport`] — so per-run reports stay bit-identical regardless of
/// scheduling (see the crate-level determinism contract).
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct JobTiming {
    /// Wall-clock seconds the job spent executing on its worker.
    pub wall_s: f64,
    /// CPU seconds consumed by the worker thread while executing the job
    /// (utime + stime from `/proc/thread-self/stat`); `None` where the
    /// platform doesn't expose per-thread accounting.
    pub cpu_s: Option<f64>,
}

/// Outcome of one job of a batch, in job-index order.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct JobRecord {
    /// Index of the job in the submitted spec list.
    pub index: u64,
    /// The spec's label.
    pub label: String,
    /// Host-side wall-clock / CPU timing of the run.
    pub timing: JobTiming,
    /// The run's report when it completed, `None` when it panicked.
    pub report: Option<RunReport>,
    /// The panic message when the run diverged, `None` when it completed.
    pub error: Option<String>,
}

impl JobRecord {
    /// Did this job run to completion?
    pub fn ok(&self) -> bool {
        self.report.is_some()
    }
}

/// Aggregate result of a batch: per-job records in submission order plus
/// cross-run aggregates.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BatchReport {
    /// Schema version of this batch report ([`BATCH_VERSION`]).
    pub version: u32,
    /// Schema version of the embedded [`RunReport`]s
    /// ([`cni::REPORT_VERSION`], currently 4).
    pub report_version: u32,
    /// Worker threads the batch ran on.
    pub workers: u64,
    /// Wall-clock seconds for the whole batch (submission to last
    /// completion).
    pub wall_s: f64,
    /// One record per submitted spec, **in submission order** — never in
    /// completion order.
    pub jobs: Vec<JobRecord>,
    /// Per-message-kind one-way latency histograms merged (bucket-wise)
    /// across every completed run. Percentiles over a kind no run
    /// observed follow the documented empty-histogram behaviour of
    /// [`cni_sim::Histogram::percentile`]: they are 0.
    pub merged_latency: Vec<KindHistogram>,
}

impl BatchReport {
    /// Number of jobs that completed.
    pub fn completed(&self) -> usize {
        self.jobs.iter().filter(|j| j.ok()).count()
    }

    /// Records of jobs that panicked.
    pub fn failures(&self) -> Vec<&JobRecord> {
        self.jobs.iter().filter(|j| !j.ok()).collect()
    }

    /// Sum of per-job wall-clock seconds — what a 1-worker batch would
    /// roughly have cost. `wall_s / serial_wall_s` is the parallel
    /// efficiency denominator.
    pub fn serial_wall_s(&self) -> f64 {
        self.jobs.iter().map(|j| j.timing.wall_s).sum()
    }

    fn merge_latency(jobs: &[JobRecord]) -> Vec<KindHistogram> {
        let mut merged: Vec<KindHistogram> = Vec::new();
        for job in jobs {
            let Some(report) = &job.report else { continue };
            for kh in &report.latency_hist {
                match merged.iter_mut().find(|m| m.kind == kh.kind) {
                    Some(m) => m.hist.merge(&kh.hist),
                    None => merged.push(kh.clone()),
                }
            }
        }
        merged.sort_by_key(|m| m.kind);
        merged
    }
}

/// Live progress of a batch, handed to the progress callback after each
/// job completes (from the worker that finished it).
#[derive(Clone, Copy, Debug)]
pub struct Progress<'a> {
    /// Index of the job that just finished.
    pub index: usize,
    /// Its label.
    pub label: &'a str,
    /// Jobs finished so far (including this one).
    pub done: usize,
    /// Total jobs in the batch.
    pub total: usize,
    /// Wall-clock seconds this job took.
    pub wall_s: f64,
    /// Whether it completed (vs. panicked).
    pub ok: bool,
}

/// The number of parallel jobs to use when the caller didn't say:
/// `$CNI_JOBS` when set to a positive integer, else the machine's
/// available parallelism, else 1.
pub fn default_jobs() -> usize {
    std::env::var("CNI_JOBS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

/// A bounded work-stealing worker pool for deterministic parallel runs.
#[derive(Clone, Debug)]
pub struct Pool {
    workers: usize,
    progress: bool,
}

impl Pool {
    /// A pool of `workers` threads (clamped to at least 1). Progress
    /// reporting to stderr is on by default.
    pub fn new(workers: usize) -> Pool {
        Pool {
            workers: workers.max(1),
            progress: true,
        }
    }

    /// A pool sized by [`default_jobs`].
    pub fn with_default_workers() -> Pool {
        Pool::new(default_jobs())
    }

    /// Disable per-job progress lines on stderr (for tests and quiet
    /// embedding).
    pub fn quiet(mut self) -> Pool {
        self.progress = false;
        self
    }

    /// Worker threads this pool runs.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Deterministic parallel map: apply `f` to every item and return the
    /// results **in item order**, regardless of which worker ran what or
    /// when it finished.
    ///
    /// With one worker (or zero/one items) the map degenerates to a plain
    /// in-place sequential loop — no threads are spawned, so a `--jobs 1`
    /// batch is *exactly* the sequential harness.
    ///
    /// A panic in `f` propagates out of `map` (after all workers stop
    /// picking up new items); use [`Pool::run_batch`] when individual
    /// jobs must be isolated instead.
    pub fn map<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        let n = items.len();
        if self.workers == 1 || n <= 1 {
            return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
        }
        let nw = self.workers.min(n);
        // Deal jobs round-robin into per-worker deques. Worker `w` owns
        // jobs w, w+nw, w+2nw, … and pops them front-first (lowest index
        // first); a worker whose deque runs dry steals from the *back* of
        // the next non-empty victim, so stolen work is the work the owner
        // would have reached last.
        let deques: Vec<Mutex<VecDeque<usize>>> = (0..nw)
            .map(|w| Mutex::new((w..n).step_by(nw).collect()))
            .collect();
        let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for w in 0..nw {
                let deques = &deques;
                let slots = &slots;
                let items = &items;
                let f = &f;
                scope.spawn(move || {
                    while let Some(i) = Self::next_job(deques, w) {
                        let r = f(i, &items[i]);
                        *slots[i].lock().unwrap() = Some(r);
                    }
                });
            }
        });
        slots
            .into_iter()
            .enumerate()
            .map(|(i, m)| {
                m.into_inner()
                    .unwrap()
                    .unwrap_or_else(|| panic!("job {i} produced no result"))
            })
            .collect()
    }

    fn next_job(deques: &[Mutex<VecDeque<usize>>], w: usize) -> Option<usize> {
        if let Some(i) = deques[w].lock().unwrap().pop_front() {
            return Some(i);
        }
        for k in 1..deques.len() {
            let victim = (w + k) % deques.len();
            if let Some(i) = deques[victim].lock().unwrap().pop_back() {
                return Some(i);
            }
        }
        None
    }

    /// Execute every spec through `runner` and aggregate a
    /// [`BatchReport`].
    ///
    /// `runner` receives the job index and the spec. A panicking run is
    /// caught and recorded as that job's [`JobRecord::error`]; the other
    /// jobs are unaffected. Results are collected by job index, so the
    /// report's `jobs` vector is in submission order whatever the
    /// completion order was.
    pub fn run_batch<W, F>(&self, specs: Vec<RunSpec<W>>, runner: F) -> BatchReport
    where
        W: Sync,
        F: Fn(usize, &RunSpec<W>) -> RunReport + Sync,
    {
        let total = specs.len();
        let done = AtomicUsize::new(0);
        let progress = self.progress;
        // Designated host-timing module (DESIGN.md §4.7): JobTiming wall
        // clocks are kept out of RunReport, so host time is permitted here.
        #[allow(clippy::disallowed_methods)]
        let t0 = Instant::now();
        let jobs = self.map(specs, |i, spec| {
            let cpu0 = thread_cpu_seconds();
            #[allow(clippy::disallowed_methods)]
            let jt0 = Instant::now();
            let outcome = catch_unwind(AssertUnwindSafe(|| runner(i, spec)));
            let wall_s = jt0.elapsed().as_secs_f64();
            let cpu_s = match (cpu0, thread_cpu_seconds()) {
                (Some(a), Some(b)) => Some((b - a).max(0.0)),
                _ => None,
            };
            let (report, error) = match outcome {
                Ok(r) => (Some(r), None),
                Err(payload) => (None, Some(panic_message(payload))),
            };
            let k = done.fetch_add(1, Ordering::Relaxed) + 1;
            if progress {
                eprintln!(
                    "[{k}/{total}] {} {} in {wall_s:.2}s",
                    spec.label,
                    if error.is_none() { "done" } else { "PANICKED" },
                );
            }
            JobRecord {
                index: i as u64,
                label: spec.label.clone(),
                timing: JobTiming { wall_s, cpu_s },
                report,
                error,
            }
        });
        let merged_latency = BatchReport::merge_latency(&jobs);
        BatchReport {
            version: BATCH_VERSION,
            report_version: REPORT_VERSION,
            workers: self.workers as u64,
            wall_s: t0.elapsed().as_secs_f64(),
            jobs,
            merged_latency,
        }
    }
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// CPU seconds (user + system) consumed by the calling thread so far.
/// `utime`/`stime` from `/proc/thread-self/stat` in USER_HZ ticks (100/s
/// on every mainstream Linux).
#[cfg(target_os = "linux")]
fn thread_cpu_seconds() -> Option<f64> {
    let stat = std::fs::read_to_string("/proc/thread-self/stat").ok()?;
    // The comm field (2) is parenthesised and may contain spaces; fields
    // 3.. follow the last ')'. utime and stime are fields 14 and 15.
    let rest = stat.rsplit_once(')')?.1;
    let mut it = rest.split_whitespace();
    let utime: u64 = it.nth(11)?.parse().ok()?;
    let stime: u64 = it.next()?.parse().ok()?;
    Some((utime + stime) as f64 / 100.0)
}

/// CPU-time accounting is not implemented off Linux.
#[cfg(not(target_os = "linux"))]
fn thread_cpu_seconds() -> Option<f64> {
    None
}

/// A minimal valid [`RunReport`] for doctests and executor tests that
/// exercise the pool without running a simulation.
pub fn doctest_report() -> RunReport {
    RunReport {
        version: REPORT_VERSION,
        wall: cni::SimTime::ZERO,
        procs: Vec::new(),
        nic: Vec::new(),
        msg_cache: Vec::new(),
        dsm: Vec::new(),
        messages: 0,
        msg_kinds: [0; 9],
        latency: Vec::new(),
        latency_hist: Vec::new(),
        trace: None,
        faults: cni::FaultStats::default(),
        stages: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cni_sim::Histogram;

    fn specs(n: usize) -> Vec<RunSpec<u64>> {
        (0..n as u64)
            .map(|i| RunSpec::new(format!("j{i}"), Config::paper_default(), i))
            .collect()
    }

    #[test]
    fn map_preserves_item_order() {
        for workers in [1, 2, 3, 8] {
            let out = Pool::new(workers)
                .quiet()
                .map((0..37u64).collect(), |i, &v| {
                    assert_eq!(i as u64, v);
                    v * 2
                });
            assert_eq!(out, (0..37u64).map(|v| v * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn map_with_more_workers_than_items() {
        let out = Pool::new(16).quiet().map(vec![1u64, 2], |_, &v| v + 1);
        assert_eq!(out, vec![2, 3]);
    }

    #[test]
    fn map_on_empty_input() {
        let out: Vec<u64> = Pool::new(4).quiet().map(Vec::<u64>::new(), |_, &v| v);
        assert!(out.is_empty());
    }

    #[test]
    fn run_batch_orders_by_index_not_completion() {
        // Make low-index jobs slow so they finish *last*; the report must
        // still list them first.
        let report = Pool::new(4).quiet().run_batch(specs(8), |i, spec| {
            if i < 2 {
                std::thread::sleep(std::time::Duration::from_millis(30));
            }
            let mut r = doctest_report();
            r.messages = spec.workload;
            r
        });
        assert_eq!(report.jobs.len(), 8);
        for (i, job) in report.jobs.iter().enumerate() {
            assert_eq!(job.index, i as u64);
            assert_eq!(job.label, format!("j{i}"));
            assert_eq!(job.report.as_ref().unwrap().messages, i as u64);
            assert!(job.timing.wall_s >= 0.0);
        }
        assert_eq!(report.completed(), 8);
        assert_eq!(report.workers, 4);
    }

    #[test]
    fn panic_isolation_reports_the_job_not_the_batch() {
        let report = Pool::new(3).quiet().run_batch(specs(6), |i, spec| {
            if i == 2 {
                panic!("diverged on purpose");
            }
            let mut r = doctest_report();
            r.messages = spec.workload;
            r
        });
        assert_eq!(report.completed(), 5);
        let failures = report.failures();
        assert_eq!(failures.len(), 1);
        assert_eq!(failures[0].index, 2);
        assert!(failures[0].error.as_ref().unwrap().contains("diverged"));
        // Neighbours of the failed job are intact.
        assert_eq!(report.jobs[1].report.as_ref().unwrap().messages, 1);
        assert_eq!(report.jobs[3].report.as_ref().unwrap().messages, 3);
    }

    #[test]
    fn merged_latency_merges_bucketwise_across_jobs() {
        let report = Pool::new(2).quiet().run_batch(specs(3), |i, _| {
            let mut r = doctest_report();
            let mut h = Histogram::new();
            h.record(1 + i as u64 * 100);
            r.latency_hist = vec![
                KindHistogram {
                    kind: 0xA0,
                    hist: h.clone(),
                },
                KindHistogram {
                    kind: 0xD5,
                    hist: h,
                },
            ];
            r
        });
        assert_eq!(report.merged_latency.len(), 2);
        // Sorted by kind byte.
        assert_eq!(report.merged_latency[0].kind, 0xA0);
        assert_eq!(report.merged_latency[1].kind, 0xD5);
        for m in &report.merged_latency {
            assert_eq!(m.hist.count(), 3);
        }
        // A kind no run observed has no entry; an empty histogram's
        // percentile is the documented 0.
        assert_eq!(Histogram::new().percentile(99.0), 0.0);
    }

    #[test]
    fn effective_config_folds_overrides_back_in() {
        let mut spec = RunSpec::new("s", Config::paper_default(), ());
        spec.seed = 42;
        spec.faults.drop_prob = 0.25;
        let cfg = spec.effective_config();
        assert_eq!(cfg.seed, 42);
        assert_eq!(cfg.faults.drop_prob, 0.25);
    }

    #[test]
    fn default_jobs_is_positive() {
        assert!(default_jobs() >= 1);
    }

    #[test]
    fn batch_report_serializes_and_parses_back() {
        let report = Pool::new(2).quiet().run_batch(specs(2), |_, spec| {
            let mut r = doctest_report();
            r.messages = spec.workload;
            r
        });
        let json = serde_json::to_string(&report).unwrap();
        let back: BatchReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.version, BATCH_VERSION);
        assert_eq!(back.report_version, REPORT_VERSION);
        assert_eq!(back.jobs.len(), 2);
        assert_eq!(back.jobs[1].report.as_ref().unwrap().messages, 1);
    }
}
