//! cni-snap — crash-safe, schema-versioned snapshot container for the CNI
//! simulator.
//!
//! This crate owns the *container* format: a sealed byte envelope with magic,
//! format version, payload length and CRC-32 trailer, written atomically via
//! temp-file + rename so a crash mid-write can never leave a half-snapshot
//! behind under the final name. It also provides the deterministic binary
//! codec that turns a [`serde::Value`] tree into bytes and back; all
//! *semantic* encoding of simulator state (what goes into that tree) lives in
//! `cni::snapshot`.
//!
//! Layout of a sealed snapshot (all integers little-endian):
//!
//! ```text
//! offset  size  field
//! 0       8     magic  b"CNISNAP\0"
//! 8       4     u32    container format version
//! 12      8     u64    payload length L
//! 20      L     payload bytes
//! 20+L    4     u32    CRC-32 (IEEE) of the payload
//! ```
//!
//! Every read is bounds-checked and returns a typed [`SnapError`]; no input,
//! however corrupt or truncated, may panic the decoder. Errors render as
//! rustc-style diagnostics via [`SnapError::render`].

#![deny(missing_docs)]

use serde::{Map, Number, Value};
use std::fmt;
use std::path::Path;

/// Current container format version written by [`seal`].
pub const FORMAT_VERSION: u32 = 1;

/// Oldest container format version [`unseal`] still accepts.
pub const OLDEST_READABLE_VERSION: u32 = 1;

/// Magic bytes identifying a CNI snapshot file.
pub const MAGIC: [u8; 8] = *b"CNISNAP\0";

/// Size in bytes of the fixed header (magic + version + payload length).
pub const HEADER_BYTES: usize = 8 + 4 + 8;

/// Maximum nesting depth [`decode_value`] accepts before declaring the
/// input malformed (guards against stack exhaustion on crafted files).
const MAX_DEPTH: u32 = 512;

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// Everything that can go wrong reading or writing a snapshot.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SnapError {
    /// Host I/O failure (open/read/write/rename).
    Io {
        /// Path the operation touched.
        path: String,
        /// Stringified OS error.
        detail: String,
    },
    /// The file does not start with [`MAGIC`].
    BadMagic {
        /// The first bytes actually found (at most 8).
        found: Vec<u8>,
    },
    /// The container format version is outside the readable range.
    UnsupportedVersion {
        /// Version found in the header.
        found: u32,
        /// Oldest version this build can read.
        oldest: u32,
        /// Newest version this build can read.
        newest: u32,
    },
    /// The input ended before a field could be read in full.
    Truncated {
        /// Byte offset at which the read started.
        offset: usize,
        /// Bytes the field needed.
        needed: usize,
        /// Bytes actually available.
        have: usize,
        /// What was being read.
        what: &'static str,
    },
    /// The payload CRC-32 does not match the trailer.
    BadCrc {
        /// CRC recorded in the trailer.
        expected: u32,
        /// CRC computed over the payload actually read.
        actual: u32,
    },
    /// Structurally invalid payload (bad tag, depth, or field shape).
    Malformed {
        /// Byte offset of the offending data, when known.
        offset: usize,
        /// Description of the problem.
        what: String,
    },
}

impl fmt::Display for SnapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapError::Io { path, detail } => write!(f, "I/O error on `{path}`: {detail}"),
            SnapError::BadMagic { found } => {
                write!(f, "not a CNI snapshot (bad magic {found:02x?})")
            }
            SnapError::UnsupportedVersion {
                found,
                oldest,
                newest,
            } => write!(
                f,
                "unsupported snapshot format version {found} (this build reads {oldest}..={newest})"
            ),
            SnapError::Truncated {
                offset,
                needed,
                have,
                what,
            } => write!(
                f,
                "truncated snapshot: {what} at offset {offset} needs {needed} bytes, only {have} available"
            ),
            SnapError::BadCrc { expected, actual } => write!(
                f,
                "payload checksum mismatch: trailer says {expected:#010x}, payload hashes to {actual:#010x}"
            ),
            SnapError::Malformed { offset, what } => {
                write!(f, "malformed snapshot payload at offset {offset}: {what}")
            }
        }
    }
}

impl SnapError {
    /// Render a rustc-style multi-line diagnostic for this error as it
    /// relates to `path`.
    pub fn render(&self, path: &str) -> String {
        let mut out = String::new();
        out.push_str(&format!("error: {self}\n"));
        out.push_str(&format!("  --> {path}\n"));
        let help = match self {
            SnapError::Io { .. } => {
                "check that the path exists and is readable/writable".to_string()
            }
            SnapError::BadMagic { .. } => {
                "expected a file produced by `cni-run --checkpoint-every`".to_string()
            }
            SnapError::UnsupportedVersion { found, newest, .. } if found > newest => {
                "this snapshot was written by a newer build; upgrade cni-run".to_string()
            }
            SnapError::UnsupportedVersion { .. } => {
                "this snapshot predates the oldest readable format; re-run from scratch".to_string()
            }
            SnapError::Truncated { .. } => {
                "the file was cut short (torn write or partial copy); use an older checkpoint"
                    .to_string()
            }
            SnapError::BadCrc { .. } => {
                "the payload was corrupted on disk; use an older checkpoint".to_string()
            }
            SnapError::Malformed { .. } => {
                "the container is intact but the payload is not a valid snapshot tree".to_string()
            }
        };
        out.push_str(&format!("  = help: {help}\n"));
        out
    }
}

// ---------------------------------------------------------------------------
// CRC-32 (IEEE 802.3, reflected) — table-driven, no external deps.
// ---------------------------------------------------------------------------

const fn build_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut n = 0;
    while n < 256 {
        let mut c = n as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[n] = c;
        n += 1;
    }
    table
}

const CRC_TABLE: [u32; 256] = build_crc_table();

/// CRC-32 (IEEE) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// ---------------------------------------------------------------------------
// Binary writer / reader primitives
// ---------------------------------------------------------------------------

/// Append-only little-endian byte writer.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Fresh empty writer.
    pub fn new() -> Self {
        Writer { buf: Vec::new() }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consume the writer, yielding the accumulated bytes.
    pub fn into_inner(self) -> Vec<u8> {
        self.buf
    }

    /// Write one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Write a little-endian u16.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a little-endian u32.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a little-endian u64.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a little-endian i64.
    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a little-endian u128.
    pub fn u128(&mut self, v: u128) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a length-prefixed byte string (u64 length).
    pub fn bytes(&mut self, v: &[u8]) {
        self.u64(v.len() as u64);
        self.buf.extend_from_slice(v);
    }

    /// Write a length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }
}

/// Bounds-checked little-endian reader over a byte slice. Every method
/// returns [`SnapError::Truncated`] instead of panicking when the input is
/// short.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Read from the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Current byte offset.
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Bytes left to read.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when the whole input has been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], SnapError> {
        match self.buf.get(self.pos..self.pos + n) {
            Some(s) => {
                self.pos += n;
                Ok(s)
            }
            None => Err(SnapError::Truncated {
                offset: self.pos,
                needed: n,
                have: self.remaining(),
                what,
            }),
        }
    }

    /// Read one byte.
    pub fn u8(&mut self, what: &'static str) -> Result<u8, SnapError> {
        Ok(self.take(1, what)?[0])
    }

    /// Read a little-endian u16.
    pub fn u16(&mut self, what: &'static str) -> Result<u16, SnapError> {
        let s = self.take(2, what)?;
        Ok(u16::from_le_bytes([s[0], s[1]]))
    }

    /// Read a little-endian u32.
    pub fn u32(&mut self, what: &'static str) -> Result<u32, SnapError> {
        let s = self.take(4, what)?;
        Ok(u32::from_le_bytes([s[0], s[1], s[2], s[3]]))
    }

    /// Read a little-endian u64.
    pub fn u64(&mut self, what: &'static str) -> Result<u64, SnapError> {
        let s = self.take(8, what)?;
        let mut b = [0u8; 8];
        b.copy_from_slice(s);
        Ok(u64::from_le_bytes(b))
    }

    /// Read a little-endian i64.
    pub fn i64(&mut self, what: &'static str) -> Result<i64, SnapError> {
        let s = self.take(8, what)?;
        let mut b = [0u8; 8];
        b.copy_from_slice(s);
        Ok(i64::from_le_bytes(b))
    }

    /// Read a little-endian u128.
    pub fn u128(&mut self, what: &'static str) -> Result<u128, SnapError> {
        let s = self.take(16, what)?;
        let mut b = [0u8; 16];
        b.copy_from_slice(s);
        Ok(u128::from_le_bytes(b))
    }

    /// Read a length-prefixed byte string.
    pub fn bytes(&mut self, what: &'static str) -> Result<Vec<u8>, SnapError> {
        let len = self.u64(what)? as usize;
        if len > self.remaining() {
            return Err(SnapError::Truncated {
                offset: self.pos,
                needed: len,
                have: self.remaining(),
                what,
            });
        }
        Ok(self.take(len, what)?.to_vec())
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn str(&mut self, what: &'static str) -> Result<String, SnapError> {
        let offset = self.pos;
        let raw = self.bytes(what)?;
        String::from_utf8(raw).map_err(|_| SnapError::Malformed {
            offset,
            what: format!("{what}: invalid UTF-8"),
        })
    }
}

// ---------------------------------------------------------------------------
// Deterministic binary Value codec
// ---------------------------------------------------------------------------

mod tag {
    pub const NULL: u8 = 0;
    pub const BOOL: u8 = 1;
    pub const U64: u8 = 2;
    pub const I64: u8 = 3;
    pub const F64: u8 = 4;
    pub const STRING: u8 = 5;
    pub const ARRAY: u8 = 6;
    pub const OBJECT: u8 = 7;
}

/// Encode a [`Value`] tree into `w`. The encoding is fully deterministic:
/// object fields are written in the `Map`'s insertion order (the vendored
/// serde `Map` is insertion-ordered, never hashed) and floats are written as
/// raw IEEE-754 bits, so encode/decode round-trips are exact.
pub fn encode_value(v: &Value, w: &mut Writer) {
    match v {
        Value::Null => w.u8(tag::NULL),
        Value::Bool(b) => {
            w.u8(tag::BOOL);
            w.u8(u8::from(*b));
        }
        Value::Number(n) => match *n {
            Number::U64(x) => {
                w.u8(tag::U64);
                w.u64(x);
            }
            Number::I64(x) => {
                w.u8(tag::I64);
                w.i64(x);
            }
            Number::F64(x) => {
                w.u8(tag::F64);
                w.u64(x.to_bits());
            }
        },
        Value::String(s) => {
            w.u8(tag::STRING);
            w.str(s);
        }
        Value::Array(items) => {
            w.u8(tag::ARRAY);
            w.u64(items.len() as u64);
            for item in items {
                encode_value(item, w);
            }
        }
        Value::Object(map) => {
            w.u8(tag::OBJECT);
            w.u64(map.entries().len() as u64);
            for (k, item) in map.entries() {
                w.str(k);
                encode_value(item, w);
            }
        }
    }
}

fn decode_value_at(r: &mut Reader<'_>, depth: u32) -> Result<Value, SnapError> {
    if depth > MAX_DEPTH {
        return Err(SnapError::Malformed {
            offset: r.pos(),
            what: format!("value nesting exceeds {MAX_DEPTH} levels"),
        });
    }
    let offset = r.pos();
    let t = r.u8("value tag")?;
    match t {
        tag::NULL => Ok(Value::Null),
        tag::BOOL => Ok(Value::Bool(r.u8("bool value")? != 0)),
        tag::U64 => Ok(Value::Number(Number::U64(r.u64("u64 value")?))),
        tag::I64 => Ok(Value::Number(Number::I64(r.i64("i64 value")?))),
        tag::F64 => Ok(Value::Number(Number::F64(f64::from_bits(
            r.u64("f64 bits")?,
        )))),
        tag::STRING => Ok(Value::String(r.str("string value")?)),
        tag::ARRAY => {
            let len = r.u64("array length")? as usize;
            // Each element costs at least one tag byte, so a length larger
            // than the remaining input is corrupt, not just big.
            if len > r.remaining() {
                return Err(SnapError::Malformed {
                    offset,
                    what: format!(
                        "array claims {len} elements with {} bytes left",
                        r.remaining()
                    ),
                });
            }
            let mut items = Vec::with_capacity(len);
            for _ in 0..len {
                items.push(decode_value_at(r, depth + 1)?);
            }
            Ok(Value::Array(items))
        }
        tag::OBJECT => {
            let len = r.u64("object length")? as usize;
            if len > r.remaining() {
                return Err(SnapError::Malformed {
                    offset,
                    what: format!(
                        "object claims {len} fields with {} bytes left",
                        r.remaining()
                    ),
                });
            }
            let mut map = Map::new();
            for _ in 0..len {
                let k = r.str("object key")?;
                let v = decode_value_at(r, depth + 1)?;
                map.insert(k, v);
            }
            Ok(Value::Object(map))
        }
        other => Err(SnapError::Malformed {
            offset,
            what: format!("unknown value tag {other}"),
        }),
    }
}

/// Decode one [`Value`] from `r`. Inverse of [`encode_value`].
pub fn decode_value(r: &mut Reader<'_>) -> Result<Value, SnapError> {
    decode_value_at(r, 0)
}

/// Encode a [`Value`] straight to bytes.
pub fn value_to_bytes(v: &Value) -> Vec<u8> {
    let mut w = Writer::new();
    encode_value(v, &mut w);
    w.into_inner()
}

/// Decode a [`Value`] from bytes, requiring the input to be fully consumed.
pub fn value_from_bytes(bytes: &[u8]) -> Result<Value, SnapError> {
    let mut r = Reader::new(bytes);
    let v = decode_value(&mut r)?;
    if !r.is_exhausted() {
        return Err(SnapError::Malformed {
            offset: r.pos(),
            what: format!("{} trailing bytes after value", r.remaining()),
        });
    }
    Ok(v)
}

// ---------------------------------------------------------------------------
// Sealed container
// ---------------------------------------------------------------------------

/// Wrap `payload` in the sealed container: magic, format version, length,
/// payload, CRC-32 trailer.
pub fn seal(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_BYTES + payload.len() + 4);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(payload);
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out
}

/// Validate the sealed container in `bytes` and return `(version, payload)`.
/// Rejects bad magic, out-of-range versions, short files, and CRC
/// mismatches — never panics.
pub fn unseal(bytes: &[u8]) -> Result<(u32, &[u8]), SnapError> {
    let magic = bytes.get(..8).ok_or(SnapError::Truncated {
        offset: 0,
        needed: 8,
        have: bytes.len(),
        what: "magic",
    })?;
    if magic != MAGIC {
        return Err(SnapError::BadMagic {
            found: magic.to_vec(),
        });
    }
    let mut r = Reader::new(&bytes[8..]);
    let version = r.u32("format version").map_err(|e| bump(e, 8))?;
    if !(OLDEST_READABLE_VERSION..=FORMAT_VERSION).contains(&version) {
        return Err(SnapError::UnsupportedVersion {
            found: version,
            oldest: OLDEST_READABLE_VERSION,
            newest: FORMAT_VERSION,
        });
    }
    let len = r.u64("payload length").map_err(|e| bump(e, 8))? as usize;
    let body = &bytes[HEADER_BYTES..];
    if body.len() < len + 4 {
        return Err(SnapError::Truncated {
            offset: HEADER_BYTES,
            needed: len + 4,
            have: body.len(),
            what: "payload + CRC trailer",
        });
    }
    let payload = &body[..len];
    let trailer = &body[len..len + 4];
    let expected = u32::from_le_bytes([trailer[0], trailer[1], trailer[2], trailer[3]]);
    let actual = crc32(payload);
    if expected != actual {
        return Err(SnapError::BadCrc { expected, actual });
    }
    Ok((version, payload))
}

/// Shift a [`SnapError::Truncated`] offset by `by` (for errors produced by a
/// sub-reader that started mid-file).
fn bump(e: SnapError, by: usize) -> SnapError {
    match e {
        SnapError::Truncated {
            offset,
            needed,
            have,
            what,
        } => SnapError::Truncated {
            offset: offset + by,
            needed,
            have,
            what,
        },
        other => other,
    }
}

// ---------------------------------------------------------------------------
// Crash-safe file I/O
// ---------------------------------------------------------------------------

fn io_err(path: &Path, e: std::io::Error) -> SnapError {
    SnapError::Io {
        path: path.display().to_string(),
        detail: e.to_string(),
    }
}

/// Write `bytes` to `path` crash-safely: the data lands in `<path>.tmp`
/// first and is renamed into place only once fully written, so readers
/// either see the old snapshot or the complete new one, never a torn write.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), SnapError> {
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    std::fs::write(&tmp, bytes).map_err(|e| io_err(&tmp, e))?;
    std::fs::rename(&tmp, path).map_err(|e| io_err(path, e))
}

/// Seal `payload` and write it to `path` atomically.
pub fn write_sealed(path: &Path, payload: &[u8]) -> Result<(), SnapError> {
    write_atomic(path, &seal(payload))
}

/// Read a sealed snapshot from `path`, returning `(version, payload)`.
pub fn read_sealed(path: &Path) -> Result<(u32, Vec<u8>), SnapError> {
    let bytes = std::fs::read(path).map_err(|e| io_err(path, e))?;
    let (version, payload) = unseal(&bytes)?;
    Ok((version, payload.to_vec()))
}

/// Encode `v`, seal it and write it to `path` atomically.
pub fn write_value(path: &Path, v: &Value) -> Result<(), SnapError> {
    write_sealed(path, &value_to_bytes(v))
}

/// Read, unseal and decode a snapshot [`Value`] from `path`.
pub fn read_value(path: &Path) -> Result<Value, SnapError> {
    let (_version, payload) = read_sealed(path)?;
    value_from_bytes(&payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_value() -> Value {
        let mut obj = Map::new();
        obj.insert("name".to_string(), Value::String("jacobi".to_string()));
        obj.insert("events".to_string(), Value::Number(Number::U64(12345)));
        obj.insert("delta".to_string(), Value::Number(Number::I64(-7)));
        obj.insert("prob".to_string(), Value::Number(Number::F64(0.05)));
        obj.insert("live".to_string(), Value::Bool(true));
        obj.insert("none".to_string(), Value::Null);
        obj.insert(
            "ring".to_string(),
            Value::Array(vec![
                Value::Number(Number::U64(1)),
                Value::String("two".to_string()),
                Value::Array(vec![Value::Bool(false)]),
            ]),
        );
        Value::Object(obj)
    }

    #[test]
    fn value_round_trip_is_exact() {
        let v = sample_value();
        let bytes = value_to_bytes(&v);
        let back = value_from_bytes(&bytes).unwrap();
        assert_eq!(format!("{v:?}"), format!("{back:?}"));
        // Determinism: encoding twice yields identical bytes.
        assert_eq!(bytes, value_to_bytes(&back));
    }

    #[test]
    fn float_bits_survive() {
        for bits in [
            0u64,
            1,
            f64::NAN.to_bits(),
            (-0.0f64).to_bits(),
            u64::MAX >> 12,
        ] {
            let v = Value::Number(Number::F64(f64::from_bits(bits)));
            let back = value_from_bytes(&value_to_bytes(&v)).unwrap();
            match back {
                Value::Number(Number::F64(x)) => assert_eq!(x.to_bits(), bits),
                other => panic!("expected F64, got {other:?}"),
            }
        }
    }

    #[test]
    fn seal_unseal_round_trip() {
        let payload = value_to_bytes(&sample_value());
        let sealed = seal(&payload);
        let (version, got) = unseal(&sealed).unwrap();
        assert_eq!(version, FORMAT_VERSION);
        assert_eq!(got, &payload[..]);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut sealed = seal(b"hello");
        sealed[0] = b'X';
        assert!(matches!(unseal(&sealed), Err(SnapError::BadMagic { .. })));
        // A completely unrelated file.
        assert!(matches!(
            unseal(b"{\"version\":5}"),
            Err(SnapError::BadMagic { .. })
        ));
    }

    #[test]
    fn unknown_version_is_rejected() {
        let mut sealed = seal(b"hello");
        sealed[8..12].copy_from_slice(&(FORMAT_VERSION + 1).to_le_bytes());
        match unseal(&sealed) {
            Err(SnapError::UnsupportedVersion { found, .. }) => {
                assert_eq!(found, FORMAT_VERSION + 1)
            }
            other => panic!("expected UnsupportedVersion, got {other:?}"),
        }
    }

    #[test]
    fn flipped_payload_bit_fails_crc() {
        let payload = value_to_bytes(&sample_value());
        let mut sealed = seal(&payload);
        sealed[HEADER_BYTES + 3] ^= 0x40;
        assert!(matches!(unseal(&sealed), Err(SnapError::BadCrc { .. })));
    }

    #[test]
    fn truncation_at_every_64_byte_boundary_errors_cleanly() {
        let payload = value_to_bytes(&sample_value());
        let sealed = seal(&payload);
        assert!(sealed.len() > 128, "fixture too small to exercise framing");
        let mut cut = 0;
        while cut < sealed.len() {
            let torn = &sealed[..cut];
            let r = unseal(torn);
            assert!(
                r.is_err(),
                "truncation to {cut} bytes of {} must not parse",
                sealed.len()
            );
            cut += 64;
        }
    }

    #[test]
    fn corrupt_value_tag_is_malformed_not_panic() {
        let mut bytes = value_to_bytes(&sample_value());
        bytes[0] = 0xFF;
        assert!(matches!(
            value_from_bytes(&bytes),
            Err(SnapError::Malformed { .. })
        ));
    }

    #[test]
    fn oversized_array_claim_is_malformed() {
        let mut w = Writer::new();
        w.u8(6); // array tag
        w.u64(u64::MAX); // absurd length
        assert!(matches!(
            value_from_bytes(&w.into_inner()),
            Err(SnapError::Malformed { .. })
        ));
    }

    #[test]
    fn deep_nesting_is_bounded() {
        let mut w = Writer::new();
        for _ in 0..2000 {
            w.u8(6); // array tag
            w.u64(1); // one element
        }
        w.u8(0); // innermost null
        assert!(matches!(
            value_from_bytes(&w.into_inner()),
            Err(SnapError::Malformed { .. })
        ));
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut bytes = value_to_bytes(&sample_value());
        bytes.push(0);
        assert!(matches!(
            value_from_bytes(&bytes),
            Err(SnapError::Malformed { .. })
        ));
    }

    #[test]
    fn write_atomic_leaves_no_tmp_behind() {
        let dir = std::env::temp_dir().join(format!("cni-snap-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("a.cnisnap");
        write_sealed(&path, b"payload").unwrap();
        let (v, got) = read_sealed(&path).unwrap();
        assert_eq!(v, FORMAT_VERSION);
        assert_eq!(got, b"payload");
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        assert!(!std::path::Path::new(&tmp).exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reader_primitives_report_truncation() {
        let mut r = Reader::new(&[1, 2, 3]);
        assert_eq!(r.u16("x").unwrap(), 0x0201);
        match r.u32("wide field") {
            Err(SnapError::Truncated {
                offset,
                needed,
                have,
                what,
            }) => {
                assert_eq!((offset, needed, have, what), (2, 4, 1, "wide field"));
            }
            other => panic!("expected Truncated, got {other:?}"),
        }
    }

    #[test]
    fn diagnostics_render_rustc_style() {
        let e = SnapError::BadCrc {
            expected: 1,
            actual: 2,
        };
        let msg = e.render("ck/job-3.cnisnap");
        assert!(msg.starts_with("error: "));
        assert!(msg.contains("--> ck/job-3.cnisnap"));
        assert!(msg.contains("help:"));
    }
}
