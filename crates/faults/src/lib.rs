//! Deterministic fault injection for the CNI simulator.
//!
//! The paper's evaluation assumes a lossless ATM fabric, yet its own
//! machinery — AAL5 CRC-32 trailers, free/receive rings that can run dry —
//! exists precisely because real fabrics drop and corrupt cells. This crate
//! supplies the *fault side* of that story: a [`FaultPlan`] describing cell
//! drop probability, bit-corruption probability, per-cell latency jitter and
//! scheduled link "brownout" windows, executed by a [`FaultInjector`] whose
//! own PCG-32 stream is seeded from the plan so that identical seeds
//! reproduce identical fault sequences, independent of the simulator's
//! jitter RNG.
//!
//! The crate is deliberately a leaf: it knows nothing about cells, links or
//! the event queue. The fabric asks the injector for a [`CellFate`] per cell
//! and applies the verdict itself; the recovery protocol (go-back-N
//! retransmission in `cni-core`) accumulates its counters into the same
//! [`FaultStats`] record that lands in the run report.

#![deny(clippy::unwrap_used)]
#![deny(missing_docs)]

use serde::{Deserialize, Serialize};

/// A permuted-congruential generator (PCG-XSH-RR 64/32).
///
/// The fault subsystem carries its own generator — distinct in both
/// algorithm and seed from `cni-sim`'s SplitMix64 jitter stream — so that
/// enabling faults never perturbs the draws the baseline simulation makes,
/// and so fault sequences are reproducible from `--fault-seed` alone.
#[derive(Clone, Debug)]
pub struct Pcg32 {
    state: u64,
    inc: u64,
}

impl Pcg32 {
    const MULT: u64 = 6_364_136_223_846_793_005;

    /// A generator seeded with `seed` on stream `stream`.
    pub fn new(seed: u64, stream: u64) -> Self {
        let mut rng = Pcg32 {
            state: 0,
            inc: (stream << 1) | 1,
        };
        rng.next_u32();
        rng.state = rng.state.wrapping_add(seed);
        rng.next_u32();
        rng
    }

    /// Next 32 uniformly distributed bits.
    pub fn next_u32(&mut self) -> u32 {
        let old = self.state;
        self.state = old.wrapping_mul(Self::MULT).wrapping_add(self.inc);
        let xorshifted = (((old >> 18) ^ old) >> 27) as u32;
        let rot = (old >> 59) as u32;
        xorshifted.rotate_right(rot)
    }

    /// Next 64 uniformly distributed bits (two 32-bit draws).
    pub fn next_u64(&mut self) -> u64 {
        let hi = self.next_u32() as u64;
        let lo = self.next_u32() as u64;
        (hi << 32) | lo
    }

    /// A uniform draw in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A bias-free uniform draw in `[0, bound)` via widening multiply.
    /// `bound` must be nonzero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "next_below needs a nonzero bound");
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Internal `(state, stream increment)` pair, for checkpointing.
    pub fn state(&self) -> (u64, u64) {
        (self.state, self.inc)
    }

    /// Rebuild a generator mid-stream from a pair captured with
    /// [`Pcg32::state`]. The resumed draw sequence continues exactly where
    /// the captured generator left off.
    pub fn from_state(state: u64, inc: u64) -> Self {
        Pcg32 { state, inc }
    }
}

/// A scheduled window during which one source link drops every cell.
///
/// Models transient fabric outages (a flapping port, a switch reset): all
/// cells entering the fabric from `link` between `start_ps` and `end_ps`
/// (half-open, picoseconds of virtual time) are discarded.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct BrownoutWindow {
    /// Ingress port whose cells are dropped.
    pub link: u32,
    /// Window start (inclusive), picoseconds of virtual time.
    pub start_ps: u64,
    /// Window end (exclusive), picoseconds of virtual time.
    pub end_ps: u64,
}

impl BrownoutWindow {
    fn covers(&self, t_ps: u64, link: usize) -> bool {
        self.link as usize == link && t_ps >= self.start_ps && t_ps < self.end_ps
    }

    /// True when the window covers at least one instant. Zero-length (or
    /// inverted) windows drop nothing and must not count as injected
    /// faults anywhere.
    pub fn is_active(&self) -> bool {
        self.end_ps > self.start_ps
    }
}

/// Maximum number of scheduled brownout windows in a plan (a fixed-size
/// array keeps [`FaultPlan`] `Copy`, so `Config` stays `Copy` too).
pub const MAX_BROWNOUTS: usize = 4;

/// The complete, seeded description of the faults a run will experience,
/// plus the knobs of the recovery protocol layered on top.
///
/// Two runs configured with equal plans observe byte-identical fault
/// sequences. A plan for which [`FaultPlan::is_zero`] holds injects nothing
/// and the simulator bypasses the reliability layer entirely, keeping
/// timings bit-identical to a build without this subsystem.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Per-cell probability of silent loss in the fabric, `[0, 1)`.
    pub drop_prob: f64,
    /// Per-cell probability of a single flipped payload bit, `[0, 1)`.
    pub corrupt_prob: f64,
    /// Maximum extra per-cell delivery latency; each delivered cell is
    /// delayed by a uniform draw in `[0, jitter_ps]`. Zero disables jitter.
    pub jitter_ps: u64,
    /// Seed of the injector's PCG-32 stream (`--fault-seed`).
    pub seed: u64,
    /// Receive-ring capacity in frames the reliability layer models per
    /// node; an in-order frame arriving while the ring is full is counted,
    /// NAKed and dropped instead of stalling. Zero means unbounded.
    pub rx_ring_frames: u32,
    /// Initial retransmission timeout, picoseconds.
    pub rto_base_ps: u64,
    /// Ceiling of the exponential backoff on the retransmission timeout.
    pub rto_cap_ps: u64,
    /// Go-back-N sender window, in frames per (source, destination) channel.
    pub window: u32,
    /// Largest wire frame the reliable layer puts into one AAL5 PDU;
    /// longer messages are fragmented into frames of at most this size,
    /// each with its own sequence number and CRC. This bounds the cells
    /// at risk per retransmission: a PDU of `n` cells survives a lossy
    /// fabric with probability `(1 - drop_prob)^n`, so without a cap a
    /// multi-kilobyte message may effectively never arrive intact.
    pub max_frame_bytes: u32,
    /// Scheduled link brownout windows (unused slots are `None`).
    pub brownouts: [Option<BrownoutWindow>; MAX_BROWNOUTS],
}

impl FaultPlan {
    /// The lossless plan: nothing dropped, corrupted or delayed.
    pub const fn none() -> Self {
        FaultPlan {
            drop_prob: 0.0,
            corrupt_prob: 0.0,
            jitter_ps: 0,
            seed: 1,
            rx_ring_frames: 64,
            rto_base_ps: 100_000_000,  // 100 us: a few page round-trips
            rto_cap_ps: 2_000_000_000, // 2 ms backoff ceiling
            window: 8,
            max_frame_bytes: 2048,
            brownouts: [None; MAX_BROWNOUTS],
        }
    }

    /// True when the plan injects no faults at all. The simulator then
    /// takes the legacy lossless path, draw-for-draw and event-for-event.
    ///
    /// Zero-length brownout windows cover no instant and drop nothing, so
    /// a plan whose only windows are empty is still a zero plan — it must
    /// not activate the reliability layer and perturb timings.
    pub fn is_zero(&self) -> bool {
        self.drop_prob == 0.0
            && self.corrupt_prob == 0.0
            && self.jitter_ps == 0
            && !self
                .brownouts
                .iter()
                .flatten()
                .any(BrownoutWindow::is_active)
    }

    /// Panic if a probability is outside `[0, 1)` or a protocol knob is
    /// degenerate. Called once when the simulation is built.
    pub fn validate(&self) {
        assert!(
            (0.0..1.0).contains(&self.drop_prob),
            "drop_prob must be in [0, 1), got {}",
            self.drop_prob
        );
        assert!(
            (0.0..1.0).contains(&self.corrupt_prob),
            "corrupt_prob must be in [0, 1), got {}",
            self.corrupt_prob
        );
        assert!(self.window > 0, "go-back-N window must be nonzero");
        assert!(
            self.max_frame_bytes >= 64,
            "max_frame_bytes must be at least 64, got {}",
            self.max_frame_bytes
        );
        assert!(self.rto_base_ps > 0, "rto_base_ps must be nonzero");
        assert!(
            self.rto_cap_ps >= self.rto_base_ps,
            "rto_cap_ps must be at least rto_base_ps"
        );
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

/// The injector's verdict for one cell entering the fabric.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CellFate {
    /// The cell crosses the fabric intact.
    Deliver,
    /// The cell is silently discarded.
    Drop,
    /// The cell is delivered with one payload bit flipped.
    Corrupt {
        /// Payload byte offset of the flipped bit.
        byte: u32,
        /// Bit index within that byte, `0..8`.
        bit: u8,
    },
}

impl CellFate {
    /// True when the cell never reaches the egress link.
    pub fn is_drop(&self) -> bool {
        matches!(self, CellFate::Drop)
    }
}

/// Executes a [`FaultPlan`] cell by cell, counting what it does.
///
/// Determinism contract: the sequence of RNG draws depends only on the
/// plan and on the order of [`FaultInjector::cell_fate`] /
/// [`FaultInjector::jitter_ps`] calls, which the deterministic event loop
/// fixes. Zero-probability dimensions consume no draws.
#[derive(Clone, Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    rng: Pcg32,
    cells_dropped: u64,
    cells_corrupted: u64,
    brownout_cells: u64,
}

impl FaultInjector {
    /// Stream selector for the cell-fate generator.
    const STREAM: u64 = 0xCE11_FA17;

    /// An injector executing `plan`.
    pub fn new(plan: FaultPlan) -> Self {
        plan.validate();
        FaultInjector {
            plan,
            rng: Pcg32::new(plan.seed, Self::STREAM),
            cells_dropped: 0,
            cells_corrupted: 0,
            brownout_cells: 0,
        }
    }

    /// The plan this injector executes.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Decide the fate of one cell entering the fabric at `t_ps` on
    /// ingress port `link`, carrying `payload_bytes` bytes of payload.
    pub fn cell_fate(&mut self, t_ps: u64, link: usize, payload_bytes: usize) -> CellFate {
        if self
            .plan
            .brownouts
            .iter()
            .flatten()
            .any(|w| w.covers(t_ps, link))
        {
            self.brownout_cells += 1;
            self.cells_dropped += 1;
            return CellFate::Drop;
        }
        if self.plan.drop_prob > 0.0 && self.rng.next_f64() < self.plan.drop_prob {
            self.cells_dropped += 1;
            return CellFate::Drop;
        }
        if self.plan.corrupt_prob > 0.0 && self.rng.next_f64() < self.plan.corrupt_prob {
            self.cells_corrupted += 1;
            let byte = self.rng.next_below(payload_bytes.max(1) as u64) as u32;
            let bit = self.rng.next_below(8) as u8;
            return CellFate::Corrupt { byte, bit };
        }
        CellFate::Deliver
    }

    /// Extra latency for one delivered cell: uniform in `[0, jitter_ps]`,
    /// zero (and no RNG draw) when the plan disables jitter.
    pub fn jitter_ps(&mut self) -> u64 {
        if self.plan.jitter_ps == 0 {
            0
        } else {
            self.rng.next_below(self.plan.jitter_ps + 1)
        }
    }

    /// The injector's share of the fault counters (cell-level only; the
    /// recovery protocol merges its own on top).
    pub fn stats(&self) -> FaultStats {
        FaultStats {
            cells_dropped: self.cells_dropped,
            cells_corrupted: self.cells_corrupted,
            brownout_cells: self.brownout_cells,
            ..FaultStats::default()
        }
    }

    /// Capture the injector's mid-run state for a checkpoint. The plan
    /// itself is not included — it travels with the run configuration and
    /// is re-validated on restore.
    pub fn snapshot(&self) -> InjectorSnapshot {
        let (rng_state, rng_inc) = self.rng.state();
        InjectorSnapshot {
            rng_state,
            rng_inc,
            cells_dropped: self.cells_dropped,
            cells_corrupted: self.cells_corrupted,
            brownout_cells: self.brownout_cells,
        }
    }

    /// Rebuild an injector mid-run from `plan` plus a state captured with
    /// [`FaultInjector::snapshot`]. The resumed fate sequence continues
    /// draw-for-draw where the captured injector left off.
    pub fn from_snapshot(plan: FaultPlan, s: InjectorSnapshot) -> Self {
        plan.validate();
        FaultInjector {
            plan,
            rng: Pcg32::from_state(s.rng_state, s.rng_inc),
            cells_dropped: s.cells_dropped,
            cells_corrupted: s.cells_corrupted,
            brownout_cells: s.brownout_cells,
        }
    }
}

/// Serializable mid-run state of a [`FaultInjector`]: the PCG-32 stream
/// position plus the cell-level counters. Pending brownout windows need no
/// state of their own — they are pure functions of virtual time in the
/// plan, so restoring the clock restores them.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct InjectorSnapshot {
    /// PCG-32 internal state word.
    pub rng_state: u64,
    /// PCG-32 stream increment.
    pub rng_inc: u64,
    /// Cells discarded so far (random loss plus brownouts).
    pub cells_dropped: u64,
    /// Cells corrupted so far.
    pub cells_corrupted: u64,
    /// Subset of `cells_dropped` owed to brownout windows.
    pub brownout_cells: u64,
}

/// Fault and recovery counters for one run, merged into the run report.
///
/// The injector fills the cell-level fields; the reliability layer in
/// `cni-core` fills the protocol fields; the NICs contribute the CRC
/// failures their reassemblers detected.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultStats {
    /// Cells discarded in the fabric (random loss plus brownouts).
    pub cells_dropped: u64,
    /// Cells delivered with a flipped payload bit.
    pub cells_corrupted: u64,
    /// Subset of `cells_dropped` owed to scheduled brownout windows.
    pub brownout_cells: u64,
    /// PDUs the receiving NICs rejected on AAL5 CRC-32 / length checks.
    pub crc_failures: u64,
    /// Frames retransmitted (timeout and fast retransmissions combined).
    pub retransmits: u64,
    /// Retransmission-timer expiries that found unacknowledged frames.
    pub timeouts: u64,
    /// Go-back-N fast retransmissions triggered by duplicate ACKs.
    pub fast_retransmits: u64,
    /// Duplicate frames the receivers suppressed.
    pub duplicates: u64,
    /// In-order frames dropped-and-NAKed because the receive ring was full.
    pub ring_overflows: u64,
    /// Acknowledgement PDUs transmitted.
    pub acks_sent: u64,
}

impl FaultStats {
    /// Accumulate another record's counters into this one.
    pub fn merge(&mut self, o: &FaultStats) {
        self.cells_dropped += o.cells_dropped;
        self.cells_corrupted += o.cells_corrupted;
        self.brownout_cells += o.brownout_cells;
        self.crc_failures += o.crc_failures;
        self.retransmits += o.retransmits;
        self.timeouts += o.timeouts;
        self.fast_retransmits += o.fast_retransmits;
        self.duplicates += o.duplicates;
        self.ring_overflows += o.ring_overflows;
        self.acks_sent += o.acks_sent;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pcg_is_deterministic_and_streams_differ() {
        let mut a = Pcg32::new(42, 1);
        let mut b = Pcg32::new(42, 1);
        let mut c = Pcg32::new(42, 2);
        let xs: Vec<u32> = (0..8).map(|_| a.next_u32()).collect();
        let ys: Vec<u32> = (0..8).map(|_| b.next_u32()).collect();
        let zs: Vec<u32> = (0..8).map(|_| c.next_u32()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn uniform_draws_stay_in_range() {
        let mut r = Pcg32::new(7, 3);
        for _ in 0..1000 {
            let f = r.next_f64();
            assert!((0.0..1.0).contains(&f));
            assert!(r.next_below(10) < 10);
        }
    }

    #[test]
    fn zero_plan_injects_nothing() {
        let mut inj = FaultInjector::new(FaultPlan::none());
        assert!(inj.plan().is_zero());
        for i in 0..100 {
            assert_eq!(inj.cell_fate(i, (i % 4) as usize, 48), CellFate::Deliver);
            assert_eq!(inj.jitter_ps(), 0);
        }
        assert_eq!(inj.stats(), FaultStats::default());
    }

    #[test]
    fn same_seed_reproduces_the_same_fate_sequence() {
        let plan = FaultPlan {
            drop_prob: 0.3,
            corrupt_prob: 0.2,
            jitter_ps: 500,
            seed: 0xDEAD,
            ..FaultPlan::none()
        };
        let mut a = FaultInjector::new(plan);
        let mut b = FaultInjector::new(plan);
        for i in 0..500 {
            assert_eq!(
                a.cell_fate(i, (i % 8) as usize, 48),
                b.cell_fate(i, (i % 8) as usize, 48)
            );
            assert_eq!(a.jitter_ps(), b.jitter_ps());
        }
        assert_eq!(a.stats(), b.stats());
        assert!(a.stats().cells_dropped > 0);
        assert!(a.stats().cells_corrupted > 0);
    }

    #[test]
    fn corrupt_fate_targets_a_valid_payload_bit() {
        let plan = FaultPlan {
            corrupt_prob: 0.999,
            ..FaultPlan::none()
        };
        let mut inj = FaultInjector::new(plan);
        let mut corrupted = 0;
        for i in 0..200 {
            if let CellFate::Corrupt { byte, bit } = inj.cell_fate(i, 0, 48) {
                assert!(byte < 48);
                assert!(bit < 8);
                corrupted += 1;
            }
        }
        assert!(corrupted > 150, "got {corrupted}");
    }

    #[test]
    fn brownout_drops_only_inside_its_window_and_link() {
        let plan = FaultPlan {
            brownouts: [
                Some(BrownoutWindow {
                    link: 2,
                    start_ps: 100,
                    end_ps: 200,
                }),
                None,
                None,
                None,
            ],
            ..FaultPlan::none()
        };
        assert!(!plan.is_zero());
        let mut inj = FaultInjector::new(plan);
        assert_eq!(inj.cell_fate(150, 2, 48), CellFate::Drop);
        assert_eq!(inj.cell_fate(150, 3, 48), CellFate::Deliver);
        assert_eq!(inj.cell_fate(99, 2, 48), CellFate::Deliver);
        assert_eq!(inj.cell_fate(200, 2, 48), CellFate::Deliver);
        let s = inj.stats();
        assert_eq!(s.brownout_cells, 1);
        assert_eq!(s.cells_dropped, 1);
    }

    #[test]
    fn zero_length_brownout_window_drops_nothing() {
        let plan = FaultPlan {
            brownouts: [
                Some(BrownoutWindow {
                    link: 0,
                    start_ps: 500,
                    end_ps: 500, // empty: covers no instant
                }),
                Some(BrownoutWindow {
                    link: 1,
                    start_ps: 900,
                    end_ps: 300, // inverted: also covers no instant
                }),
                None,
                None,
            ],
            ..FaultPlan::none()
        };
        // A plan whose only windows are empty injects nothing, so it must
        // read as the zero plan and leave the lossless fast path intact.
        assert!(plan.is_zero());
        let mut inj = FaultInjector::new(plan);
        for t in [0, 299, 300, 499, 500, 501, 899, 900, 1000] {
            for link in 0..2 {
                assert_eq!(inj.cell_fate(t, link, 48), CellFate::Deliver);
            }
        }
        assert_eq!(inj.stats(), FaultStats::default());
    }

    #[test]
    fn overlapping_brownout_windows_count_each_cell_once() {
        let plan = FaultPlan {
            brownouts: [
                Some(BrownoutWindow {
                    link: 0,
                    start_ps: 100,
                    end_ps: 300,
                }),
                Some(BrownoutWindow {
                    link: 0,
                    start_ps: 200,
                    end_ps: 400, // overlaps [200, 300) with the first
                }),
                Some(BrownoutWindow {
                    link: 0,
                    start_ps: 250,
                    end_ps: 260, // nested inside both
                }),
                None,
            ],
            ..FaultPlan::none()
        };
        let mut inj = FaultInjector::new(plan);
        // One cell in the triple-covered region, one in each single-covered
        // flank, one outside.
        assert_eq!(inj.cell_fate(255, 0, 48), CellFate::Drop);
        assert_eq!(inj.cell_fate(150, 0, 48), CellFate::Drop);
        assert_eq!(inj.cell_fate(350, 0, 48), CellFate::Drop);
        assert_eq!(inj.cell_fate(450, 0, 48), CellFate::Deliver);
        let s = inj.stats();
        assert_eq!(s.brownout_cells, 3, "each dropped cell counts once");
        assert_eq!(s.cells_dropped, 3);
    }

    #[test]
    fn injector_snapshot_resumes_the_fate_stream_exactly() {
        let plan = FaultPlan {
            drop_prob: 0.25,
            corrupt_prob: 0.15,
            jitter_ps: 700,
            seed: 0xBEEF,
            ..FaultPlan::none()
        };
        let mut whole = FaultInjector::new(plan);
        let mut first_half = FaultInjector::new(plan);
        for i in 0..250 {
            whole.cell_fate(i, (i % 4) as usize, 48);
            whole.jitter_ps();
            first_half.cell_fate(i, (i % 4) as usize, 48);
            first_half.jitter_ps();
        }
        let mut resumed = FaultInjector::from_snapshot(plan, first_half.snapshot());
        for i in 250..500 {
            assert_eq!(
                whole.cell_fate(i, (i % 4) as usize, 48),
                resumed.cell_fate(i, (i % 4) as usize, 48)
            );
            assert_eq!(whole.jitter_ps(), resumed.jitter_ps());
        }
        assert_eq!(whole.stats(), resumed.stats());
    }

    #[test]
    fn jitter_is_bounded_by_the_plan() {
        let plan = FaultPlan {
            jitter_ps: 250,
            ..FaultPlan::none()
        };
        let mut inj = FaultInjector::new(plan);
        for _ in 0..1000 {
            assert!(inj.jitter_ps() <= 250);
        }
    }

    #[test]
    fn stats_merge_adds_every_counter() {
        let a = FaultStats {
            cells_dropped: 1,
            cells_corrupted: 2,
            brownout_cells: 3,
            crc_failures: 4,
            retransmits: 5,
            timeouts: 6,
            fast_retransmits: 7,
            duplicates: 8,
            ring_overflows: 9,
            acks_sent: 10,
        };
        let mut b = a;
        b.merge(&a);
        assert_eq!(
            b,
            FaultStats {
                cells_dropped: 2,
                cells_corrupted: 4,
                brownout_cells: 6,
                crc_failures: 8,
                retransmits: 10,
                timeouts: 12,
                fast_retransmits: 14,
                duplicates: 16,
                ring_overflows: 18,
                acks_sent: 20,
            }
        );
    }

    #[test]
    fn plan_roundtrips_through_serde() {
        let plan = FaultPlan {
            drop_prob: 0.05,
            corrupt_prob: 0.01,
            jitter_ps: 1234,
            seed: 99,
            brownouts: [
                Some(BrownoutWindow {
                    link: 1,
                    start_ps: 5,
                    end_ps: 9,
                }),
                None,
                None,
                None,
            ],
            ..FaultPlan::none()
        };
        let v = serde::Serialize::to_value(&plan);
        let back: FaultPlan = match serde::Deserialize::from_value(&v) {
            Ok(p) => p,
            Err(e) => panic!("deserialize failed: {e:?}"),
        };
        assert_eq!(back, plan);
    }

    #[test]
    #[should_panic(expected = "drop_prob")]
    fn validate_rejects_probability_of_one() {
        FaultPlan {
            drop_prob: 1.0,
            ..FaultPlan::none()
        }
        .validate();
    }
}
