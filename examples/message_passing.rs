//! The message-passing paradigm on the CNI — the paper's generality claim
//! (§1: the interface "efficiently supports both the message passing and
//! distributed shared memory paradigms").
//!
//! Runs Jacobi written with explicit boundary-row exchanges over
//! Application Device Channels, on both interfaces, and shows the Message
//! Cache accelerating the re-sent boundary buffers.
//!
//! ```sh
//! cargo run --release --example message_passing
//! ```

use cni::{Config, World};
use cni_apps::mp_jacobi::{self, MpJacobiParams};

fn main() {
    let params = MpJacobiParams { n: 128, iters: 25 };
    println!("message-passing Jacobi 128x128, 25 sweeps, 4 processors\n");
    for std_nic in [false, true] {
        let cfg = if std_nic {
            Config::paper_default().with_procs(4).standard()
        } else {
            Config::paper_default().with_procs(4)
        };
        let mut world = World::new(cfg);
        let (grid, report) = mp_jacobi::run(&mut world, params);
        let probe = grid[3 * params.n + 3]; // near the hot boundary
        println!(
            "{:>9}: completion {} | boundary-buffer hit ratio {:>5.1}% | interrupts {:>4} | probe {:.6}",
            if std_nic { "standard" } else { "CNI" },
            report.wall,
            report.hit_ratio() * 100.0,
            report.interrupts(),
            probe,
        );
    }
    println!(
        "\nSame numerical answer, same exchanges — the CNI just moves the \
         fixed boundary buffers from its Message Cache and polls instead of \
         fielding an interrupt per row."
    );
}
