//! The workload the paper's introduction motivates: a scientific kernel on
//! a network of workstations, compared across the two network interfaces.
//!
//! Runs Jacobi relaxation (256 × 256) on 1–16 processors under the CNI and
//! under the standard NIC, printing speedups and the network cache hit
//! ratio — a miniature of the paper's Figure 3.
//!
//! ```sh
//! cargo run --release --example jacobi_cluster
//! ```

use cni::Config;
use cni_apps::experiments::{speedup_curve, App};

fn main() {
    let app = App::Jacobi { n: 256, iters: 25 };
    println!("Jacobi 256x256, 25 sweeps, 2 KB pages\n");
    println!(
        "{:>6} {:>12} {:>12} {:>16}",
        "procs", "CNI-speedup", "Std-speedup", "NetCacheHit(%)"
    );
    for p in speedup_curve(Config::paper_default(), app, &[2, 4, 8, 16]) {
        println!(
            "{:>6} {:>12.2} {:>12.2} {:>16.1}",
            p.procs, p.cni_speedup, p.std_speedup, p.hit_ratio_pct
        );
    }
    println!(
        "\nThe CNI wins because the boundary pages it re-sends every sweep \
         stay bound in the Message Cache (no host DMA), the DSM protocol \
         runs on the board, and waiting processors poll instead of taking \
         interrupts."
    );
}
