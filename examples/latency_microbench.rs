//! The paper's Figure 14: best-case node-to-node latency of the CNI
//! (100% Message-Cache hit ratio) against the standard interface, over the
//! message-passing API.
//!
//! ```sh
//! cargo run --release --example latency_microbench
//! ```

use cni::Config;
use cni_apps::experiments::latency_curve;

fn main() {
    println!("one-way node-to-node latency (warm Message Cache)\n");
    println!(
        "{:>10} {:>12} {:>12} {:>14}",
        "bytes", "CNI (us)", "Std (us)", "reduction (%)"
    );
    let sizes = [64, 128, 256, 512, 1024, 2048, 3072, 4096];
    for p in latency_curve(Config::paper_default(), &sizes, 5) {
        println!(
            "{:>10} {:>12.1} {:>12.1} {:>14.1}",
            p.bytes,
            p.cni_us,
            p.std_us,
            (1.0 - p.cni_us / p.std_us) * 100.0
        );
    }
    println!(
        "\nAt a 4 KB page transfer the CNI cuts latency by roughly a third \
         (the paper's headline number): the Application Device Channel \
         replaces the kernel send path, the Message Cache hit skips the \
         host-to-board DMA, and the receiver polls instead of taking a \
         40 microsecond interrupt."
    );
}
