//! Quickstart: build a simulated CNI workstation cluster, run a program on
//! every node, and read the measurements.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use cni::{Config, LockId, Program, World};

fn main() {
    // A 4-workstation cluster with the paper's Table-1 parameters
    // (166 MHz hosts, 33 MHz NIC processors, 622 Mb/s ATM, 32 KB Message
    // Caches, 2 KB shared pages).
    let config = Config::paper_default().with_procs(4);
    println!("--- Table 1 parameters ---\n{}", config.table1());

    let mut world = World::new(config);

    // Shared memory: one counter page plus a data region.
    let counter = world.alloc(2048);
    let data = world.alloc(16 * 1024);

    // One program per simulated processor: everyone increments the shared
    // counter under a lock, fills a private slice of the data region, and
    // meets at a barrier.
    let programs: Vec<Program> = (0..4u64)
        .map(|me| -> Program {
            Box::new(move |ctx| {
                ctx.acquire(LockId(0));
                let v = ctx.read_u64(counter);
                ctx.write_u64(counter, v + 1);
                ctx.release(LockId(0));

                for k in 0..512u64 {
                    ctx.write_u64(data.add((me * 512 + k) * 8), me * 1000 + k);
                }
                // Charge some computation (cycles on the 166 MHz host).
                ctx.compute(500_000);
                ctx.barrier();

                // After the barrier everyone observes everyone's writes.
                let neighbour = (me + 1) % 4;
                let seen = ctx.read_u64(data.add(neighbour * 512 * 8));
                assert_eq!(seen, neighbour * 1000);
            })
        })
        .collect();

    let report = world.run(programs);

    println!("--- run report ---");
    println!("completion time : {}", report.wall);
    println!("protocol msgs   : {}", report.messages);
    println!("net cache hits  : {:.1}%", report.hit_ratio() * 100.0);
    for (p, t) in report.procs.iter().enumerate() {
        println!(
            "cpu{p}: compute {} | overhead {} | delay {}",
            t.compute, t.overhead, t.delay
        );
    }
}
