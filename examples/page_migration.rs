//! Page migration under a lock — the access pattern where the Message
//! Cache's transmit *and* receive caching pay off (the paper's Cholesky
//! observation: "pages tend to move from the releaser to the acquirer...
//! thus caching receive buffers helped performance a great deal").
//!
//! A shared page travels around the ring under one lock; each hop reads
//! and rewrites the whole page. The example contrasts the two NIC
//! personalities on DMA traffic, interrupts and latency.
//!
//! ```sh
//! cargo run --release --example page_migration
//! ```

use cni::{Config, LockId, NicKind, Program, RunReport, World};

fn run(kind: NicKind, hops: u64) -> RunReport {
    let cfg = match kind {
        NicKind::Cni => Config::paper_default().with_procs(4),
        NicKind::Standard => Config::paper_default().with_procs(4).standard(),
    };
    let mut world = World::new(cfg);
    let page = world.alloc(2048);
    let programs: Vec<Program> = (0..4u64)
        .map(|me| -> Program {
            Box::new(move |ctx| {
                for hop in 0..hops {
                    if hop % 4 == me {
                        ctx.acquire(LockId(0));
                        // Read-modify-write the whole page: the migratory
                        // pattern.
                        for w in 0..256u64 {
                            let v = ctx.read_u64(page.add(w * 8));
                            ctx.write_u64(page.add(w * 8), v + 1);
                        }
                        ctx.release(LockId(0));
                    }
                    ctx.compute(50_000);
                }
                ctx.barrier();
            })
        })
        .collect();
    world.run(programs)
}

fn main() {
    let hops = 40;
    let cni = run(NicKind::Cni, hops);
    let std_ = run(NicKind::Standard, hops);

    println!("page migration, {hops} hops of one 2 KB page around 4 nodes\n");
    println!("{:>28} {:>12} {:>12}", "", "CNI", "standard");
    println!(
        "{:>28} {:>12} {:>12}",
        "completion time",
        format!("{}", cni.wall),
        format!("{}", std_.wall)
    );
    println!(
        "{:>28} {:>12} {:>12}",
        "host->board DMA bytes",
        cni.dma_bytes_to_board(),
        std_.dma_bytes_to_board()
    );
    println!(
        "{:>28} {:>12} {:>12}",
        "host interrupts",
        cni.interrupts(),
        std_.interrupts()
    );
    println!(
        "{:>28} {:>11.1}% {:>11.1}%",
        "network cache hit ratio",
        cni.hit_ratio() * 100.0,
        std_.hit_ratio() * 100.0
    );
    println!(
        "\nReceive caching binds the page on arrival, so the next migration \
         transmits straight from the board: the CNI moves almost no DMA \
         bytes for a page that only ever passes through."
    );
}
